module Sch = Mikpoly_serve.Scheduler
module Request = Mikpoly_serve.Request
module Batcher = Mikpoly_serve.Batcher
module Bucketing = Mikpoly_serve.Bucketing
module Shape_cache = Mikpoly_serve.Shape_cache
module Tenant = Mikpoly_fleet.Tenant
module Wfq = Mikpoly_fleet.Wfq
module Ratelimit = Mikpoly_fleet.Ratelimit
module Fleet = Mikpoly_fleet.Fleet
module Plan = Mikpoly_fault.Plan
module Checksum = Mikpoly_util.Checksum
module Tm = Mikpoly_telemetry

(* Always-on hetero metrics, alongside the fleet.* family. *)
let m_routed = Tm.Metrics.counter "hetero.routed"

let m_reroutes = Tm.Metrics.counter "hetero.reroutes"

let m_trips = Tm.Metrics.counter "hetero.trips"

let m_hedges = Tm.Metrics.counter "hetero.hedges"

type hedge_config = {
  hedge_tiers : Tenant.tier list;
  hedge_slack : float;
}

let default_hedge = { hedge_tiers = [ Tenant.Gold ]; hedge_slack = 0.5 }

type config = {
  backends : Backend.t list;
  batcher : Batcher.policy;
  bucketing : Bucketing.policy;
  cache_capacity : int;
  coalesce : bool;
  health : Health.config;
  degraded_max_tokens : int;
  hedge : hedge_config option;
  failover : bool;
  ratelimit : Ratelimit.config option;
}

let validate config =
  if config.backends = [] then invalid_arg "Hetero: no backends";
  if config.cache_capacity < 0 then
    invalid_arg "Hetero: negative cache capacity";
  if config.degraded_max_tokens < 1 then
    invalid_arg "Hetero: degraded_max_tokens must be >= 1";
  Health.validate config.health;
  (match config.hedge with
  | Some h ->
    if h.hedge_slack <= 0. || h.hedge_slack > 1. then
      invalid_arg "Hetero: hedge_slack must be in (0, 1]";
    if h.hedge_tiers = [] then invalid_arg "Hetero: empty hedge_tiers"
  | None -> ());
  match config.ratelimit with
  | Some rl -> Ratelimit.validate rl
  | None -> ()

type status = Completed | Dropped | Rate_limited

let status_name = function
  | Completed -> "completed"
  | Dropped -> "dropped"
  | Rate_limited -> "rate-limited"

type class_stats = {
  cs_backend : string;
  cs_kind : string;
  cs_fingerprint : string;
  cs_replicas : int;
  cs_pes : int;
  cs_routed : int;
  cs_completed : int;
  cs_steps : int;
  cs_stall_seconds : float;
  cs_service_seconds : float;
  cs_requeues : int;
  cs_reroutes_out : int;
  cs_reroutes_in : int;
  cs_hedges_in : int;
  cs_forced : int;
  cs_probes : int;
  cs_trips : int;
  cs_drains : int;
  cs_brownout_steps : int;
  cs_degraded_entries : int;
  cs_level_transitions : int;
  cs_final_level : string;
  cs_cache : Shape_cache.stats list;
  cs_store : Shape_cache.stats;
}

type outcome = {
  o_completed : Sch.completed list;
  o_dropped : Request.t list;
  o_rate_limited : Request.t list;
  o_steps : int;
  o_makespan : float;
  o_stall_seconds : float;
  o_actual_tokens : int;
  o_padded_tokens : int;
  o_queue_depth_sum : int;
  o_queue_samples : int;
  o_crashes : int;
  o_injected_faults : int;
  o_requeues : int;
  o_reroutes : int;
  o_hedges : int;
  o_hedge_cancels : int;
  o_classes : class_stats list;
  o_tiers : Fleet.tier_metrics list;
  o_statuses : (Request.t * status) list;
  o_status_digest : string;
  o_conserved : bool;
}

type active = {
  a_tg : Tenant.tagged;
  mutable a_remaining : int;
  mutable a_kv : int;
  mutable a_prefill : int;
  mutable a_first : float;
}

type slot = {
  sl_global : int;  (* fleet-wide replica index: the fault-draw key *)
  mutable sl_clock : float;
  mutable sl_act : active list;
  mutable sl_cache : unit Shape_cache.t;
  mutable sl_step : int;
  mutable sl_down_until : float;
}

type cls = {
  c_idx : int;
  c_backend : Backend.t;
  c_slots : slot array;
  mutable c_q : Wfq.t;
  c_health : Health.t;
  c_store : float Shape_cache.t;
      (* class-shared program store: shape -> event-clock ready-at.
         The per-class analogue of the fleet's warm store — programs
         published by one replica's on-path compile become stall-free
         for its siblings once the compile finishes. *)
  mutable c_retired : Shape_cache.stats list;
  mutable c_routed : int;
  mutable c_completed : int;
  mutable c_steps : int;
  mutable c_stall : float;
  mutable c_service : float;
  mutable c_requeues : int;
  mutable c_rr_out : int;
  mutable c_rr_in : int;
  mutable c_hedges_in : int;
  mutable c_forced : int;
  mutable c_drains : int;
  mutable c_brownout_steps : int;
}

(* Event kinds in tie priority order: a crash preempts the arrival it
   races, arrivals land before hedges fire, and replica steps go last
   so they see the freshest queues — fixed, so the interleaving is
   deterministic whatever [--jobs] is. *)
let prio_crash = 0

let prio_arrival = 1

let prio_hedge = 2

let prio_step = 4

let run ?(faults = Plan.none) config trace =
  validate config;
  let classes =
    let next_global = ref 0 in
    Array.of_list
      (List.mapi
         (fun i (b : Backend.t) ->
           let slots =
             Array.init b.Backend.bk_replicas (fun _ ->
                 let g = !next_global in
                 incr next_global;
                 {
                   sl_global = g;
                   sl_clock = 0.;
                   sl_act = [];
                   sl_cache = Shape_cache.create ~capacity:config.cache_capacity;
                   sl_step = 0;
                   sl_down_until = 0.;
                 })
           in
           {
             c_idx = i;
             c_backend = b;
             c_slots = slots;
             c_q = Wfq.create ();
             c_health = Health.create config.health;
             c_store = Shape_cache.create ~capacity:config.cache_capacity;
             c_retired = [];
             c_routed = 0;
             c_completed = 0;
             c_steps = 0;
             c_stall = 0.;
             c_service = 0.;
             c_requeues = 0;
             c_rr_out = 0;
             c_rr_in = 0;
             c_hedges_in = 0;
             c_forced = 0;
             c_drains = 0;
             c_brownout_steps = 0;
           })
         config.backends)
  in
  let n_classes = Array.length classes in
  let pending =
    ref
      (List.stable_sort
         (fun (a : Tenant.tagged) (b : Tenant.tagged) ->
           Request.compare_arrival a.Tenant.req b.Tenant.req)
         trace)
  in
  let limiter =
    match config.ratelimit with
    | Some base ->
      Some
        (Ratelimit.create
           ~rate_for:(fun t -> Ratelimit.for_tier ~base t.Tenant.tier)
           ())
    | None -> None
  in
  (* The request ledger: exactly one terminal status per trace request,
     however many copies hedging and trip drains put in flight.
     [copies] counts live copies (queued or running); [running] marks
     the admitted copy so a sibling reaching a grant is discarded;
     [statuses] is write-once. *)
  let copies : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let running : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let hedged : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let statuses : (int, status) Hashtbl.t = Hashtbl.create 256 in
  let completed = ref [] in
  let dropped = ref [] in
  let rate_limited = ref [] in
  let steps = ref 0 in
  let stall_total = ref 0. in
  let actual_tokens = ref 0 in
  let padded_tokens = ref 0 in
  let qsum = ref 0 in
  let qsamples = ref 0 in
  let makespan = ref 0. in
  let crash_count = ref 0 in
  let injected = ref 0 in
  let requeues = ref 0 in
  let reroutes = ref 0 in
  let hedges = ref 0 in
  let hedge_cancels = ref 0 in
  let resolved = ref 0 in
  let crashes_left = ref faults.Plan.crashes in
  let floor_now = ref 0. in
  let signature tg =
    Bucketing.bucket config.bucketing tg.Tenant.req.Request.prompt_len
  in
  let inflight c =
    Array.fold_left (fun acc s -> acc + List.length s.sl_act) 0 c.c_slots
  in
  let queued_total () =
    Array.fold_left (fun acc c -> acc + Wfq.length c.c_q) 0 classes
  in
  let set_status (req : Request.t) st =
    if not (Hashtbl.mem statuses req.Request.id) then begin
      Hashtbl.replace statuses req.Request.id st;
      incr resolved;
      match st with
      | Completed -> ()
      | Dropped -> dropped := !dropped @ [ req ]
      | Rate_limited -> rate_limited := !rate_limited @ [ req ]
    end
  in
  let drop_copy (req : Request.t) =
    let id = req.Request.id in
    let n = (match Hashtbl.find_opt copies id with Some n -> n | None -> 1) - 1 in
    Hashtbl.replace copies id n;
    n
  in
  (* Snapshot one class for the router: predicted service for this
     bucketed shape, recompile-on-arrival cost for the shapes missing
     from the class store, live backlog, and the health verdict (the
     no-failover arm routes health-blind — its whole point). *)
  let view_of ~now ~btokens c =
    let engine = c.c_backend.Backend.bk_engine in
    let service = engine.Sch.step_seconds ~tokens:btokens ~kv_tokens:0 in
    let cold =
      List.fold_left
        (fun acc ((shape : Shape_cache.key), _) ->
          if Shape_cache.mem c.c_store shape then acc
          else acc +. engine.Sch.compile_seconds shape)
        0.
        (engine.Sch.step_shapes ~tokens:btokens)
    in
    let service_of tg' =
      engine.Sch.step_seconds ~tokens:(signature tg') ~kv_tokens:0
    in
    let backlog =
      List.fold_left
        (fun acc tg' -> acc +. service_of tg')
        0. (Wfq.to_list c.c_q)
      |> fun q ->
      Array.fold_left
        (fun acc s ->
          List.fold_left (fun acc a -> acc +. service_of a.a_tg) acc s.sl_act)
        q c.c_slots
    in
    {
      Router.cv_class = c.c_idx;
      cv_level =
        (if config.failover then Health.level c.c_health else Health.Healthy);
      cv_probe_ready = config.failover && Health.probe_ready c.c_health ~now;
      cv_replicas = c.c_backend.Backend.bk_replicas;
      cv_queue = Wfq.length c.c_q;
      cv_inflight = inflight c;
      cv_service = service;
      cv_cold_compile = cold;
      cv_backlog = backlog;
    }
  in
  let place ~now ~probe ~forced c tg =
    if probe then ignore (Health.admit_probe c.c_health ~now);
    if forced then c.c_forced <- c.c_forced + 1;
    c.c_routed <- c.c_routed + 1;
    Tm.Metrics.incr m_routed;
    Wfq.push c.c_q tg
  in
  let do_arrival tg ~now =
    let admitted =
      match limiter with Some l -> Ratelimit.admit l ~now tg | None -> true
    in
    if not admitted then
      (* Shed at the door: never reaches a queue, a router or a cache. *)
      set_status tg.Tenant.req Rate_limited
    else begin
      Hashtbl.replace copies tg.Tenant.req.Request.id 1;
      let b = signature tg in
      let views =
        Array.to_list classes |> List.map (fun c -> view_of ~now ~btokens:b c)
      in
      let d =
        Router.route ~degraded_max_tokens:config.degraded_max_tokens
          ~ttft_budget:tg.Tenant.req.Request.slo.Request.ttft ~tokens:b views
      in
      place ~now ~probe:d.Router.d_probe ~forced:d.Router.d_forced
        classes.(d.Router.d_class) tg
    end
  in
  (* Hedged dispatch: a gold-tier request still queued at
     [arrival + slack · TTFT-budget] gets a clone on the best other
     class; the first copy to reach an admission grant wins. *)
  let hedge_plane =
    match config.hedge with
    | Some h when config.failover && n_classes > 1 -> Some h
    | _ -> None
  in
  let hedge_next () =
    match hedge_plane with
    | None -> None
    | Some h ->
      let best = ref None in
      Array.iter
        (fun c ->
          List.iter
            (fun (tg : Tenant.tagged) ->
              let req = tg.Tenant.req in
              if
                List.mem tg.Tenant.tenant.Tenant.tier h.hedge_tiers
                && (not (Hashtbl.mem hedged req.Request.id))
                && not (Hashtbl.mem statuses req.Request.id)
              then begin
                let t =
                  Float.max !floor_now
                    (req.Request.arrival
                    +. (h.hedge_slack *. req.Request.slo.Request.ttft))
                in
                match !best with
                | Some (bt, _, btg)
                  when bt < t
                       || (bt = t && btg.Tenant.req.Request.id <= req.Request.id)
                  ->
                  ()
                | _ -> best := Some (t, c, tg)
              end)
            (Wfq.to_list c.c_q))
        classes;
      !best
  in
  let do_hedge c tg ~now =
    let req = tg.Tenant.req in
    Hashtbl.replace hedged req.Request.id ();
    let b = signature tg in
    let views =
      Array.to_list classes
      |> List.filter (fun o -> o.c_idx <> c.c_idx)
      |> List.map (fun o -> view_of ~now ~btokens:b o)
    in
    let d =
      Router.route ~degraded_max_tokens:config.degraded_max_tokens
        ~ttft_budget:req.Request.slo.Request.ttft ~tokens:b views
    in
    if not d.Router.d_forced then begin
      (* Only hedge onto a class willing to take the shape — a forced
         fallback would just double the load on a sick fleet. *)
      let tgt = classes.(d.Router.d_class) in
      Hashtbl.replace copies req.Request.id
        ((match Hashtbl.find_opt copies req.Request.id with
         | Some n -> n
         | None -> 1)
        + 1);
      tgt.c_hedges_in <- tgt.c_hedges_in + 1;
      incr hedges;
      Tm.Metrics.incr m_hedges;
      place ~now ~probe:d.Router.d_probe ~forced:false tgt tg
    end
  in
  (* Breaker trip: drain the whole class — every replica's in-flight
     batch back through [push_front] (they were already admitted once),
     then the waiting queue in WFQ order — onto the least-loaded
     surviving class. Recompile-on-arrival is charged there naturally,
     as ordinary class-store misses on the event clock. *)
  let drain c ~now:_ =
    c.c_drains <- c.c_drains + 1;
    Tm.Metrics.incr m_trips;
    let target =
      let best = ref None in
      Array.iter
        (fun o ->
          if o.c_idx <> c.c_idx then begin
            let evicted =
              config.failover && Health.level o.c_health = Health.Evicted
            in
            let load = Wfq.length o.c_q + inflight o in
            match !best with
            | Some (bev, bl, _)
              when (bev, bl) <= (evicted, load) ->
              ()
            | _ -> best := Some (evicted, load, o)
          end)
        classes;
      match !best with Some (_, _, o) -> Some o | None -> None
    in
    match target with
    | None ->
      (* Single-class fleet: nothing to fail over to — bounce in-flight
         work back to the class's own lanes. *)
      Array.iter
        (fun s ->
          c.c_requeues <- c.c_requeues + List.length s.sl_act;
          requeues := !requeues + List.length s.sl_act;
          List.iter
            (fun a ->
              Hashtbl.remove running a.a_tg.Tenant.req.Request.id;
              Wfq.push_front c.c_q a.a_tg)
            (List.rev s.sl_act);
          s.sl_act <- [])
        c.c_slots
    | Some tgt ->
      Array.iter
        (fun s ->
          let n = List.length s.sl_act in
          c.c_rr_out <- c.c_rr_out + n;
          tgt.c_rr_in <- tgt.c_rr_in + n;
          reroutes := !reroutes + n;
          Tm.Metrics.add m_reroutes n;
          List.iter
            (fun a ->
              Hashtbl.remove running a.a_tg.Tenant.req.Request.id;
              Wfq.push_front tgt.c_q a.a_tg)
            (List.rev s.sl_act);
          s.sl_act <- [])
        c.c_slots;
      let waiting = Wfq.to_list c.c_q in
      c.c_q <- Wfq.create ();
      let n = List.length waiting in
      c.c_rr_out <- c.c_rr_out + n;
      tgt.c_rr_in <- tgt.c_rr_in + n;
      reroutes := !reroutes + n;
      Tm.Metrics.add m_reroutes n;
      List.iter (fun tg -> Wfq.push tgt.c_q tg) waiting
  in
  let do_crash target ~now =
    let all = Array.to_list classes |> List.concat_map (fun c ->
        Array.to_list c.c_slots |> List.map (fun s -> (c, s)))
    in
    match all with
    | [] -> ()
    | _ ->
      let c, s = List.nth all (target mod List.length all) in
      incr crash_count;
      incr injected;
      c.c_requeues <- c.c_requeues + List.length s.sl_act;
      requeues := !requeues + List.length s.sl_act;
      List.iter
        (fun a ->
          Hashtbl.remove running a.a_tg.Tenant.req.Request.id;
          Wfq.push_front c.c_q a.a_tg)
        (List.rev s.sl_act);
      s.sl_act <- [];
      c.c_retired <- Shape_cache.stats s.sl_cache :: c.c_retired;
      s.sl_cache <- Shape_cache.create ~capacity:config.cache_capacity;
      s.sl_down_until <- now +. faults.Plan.restart_delay;
      s.sl_clock <- Float.max s.sl_clock s.sl_down_until;
      makespan := Float.max !makespan s.sl_down_until
  in
  let aged_time c in_flight tg =
    let arrival = tg.Tenant.req.Request.arrival in
    match config.batcher with
    | Batcher.Greedy _ | Batcher.Slo_aware _ -> arrival
    | Batcher.Timeout { window; max_batch } ->
      if Wfq.length c.c_q + in_flight >= max_batch then arrival
      else arrival +. window
  in
  let slot_next_time c s =
    let base = Float.max s.sl_clock s.sl_down_until in
    if s.sl_act <> [] then Some base
    else if Wfq.is_empty c.c_q then None
    else begin
      let earliest =
        List.fold_left
          (fun acc tg -> Float.min acc (aged_time c 0 tg))
          infinity (Wfq.to_list c.c_q)
      in
      Some (Float.max base earliest)
    end
  in
  let work_remains () =
    !pending <> []
    || Array.exists
         (fun c ->
           (not (Wfq.is_empty c.c_q))
           || Array.exists (fun s -> s.sl_act <> []) c.c_slots)
         classes
  in
  let do_step c s ~now =
    let in_flight = List.length s.sl_act in
    let cap = Batcher.max_batch config.batcher - in_flight in
    let offer =
      if cap <= 0 || Wfq.is_empty c.c_q then []
      else
        Wfq.take c.c_q ~max:cap
          ~eligible:(fun tg -> aged_time c in_flight tg <= now)
          ~group:(fun leader tg ->
            (not config.coalesce) || signature leader = signature tg)
          ()
    in
    (* Cancel-at-grant: a copy whose sibling is already running (or
       whose request already resolved) is discarded here, before the
       batcher ever sees it — the hedge's loser, or work drained twice.
       A duplicate inside one offer keeps only its first copy. *)
    let seen = Hashtbl.create 8 in
    let fresh, stale =
      List.partition
        (fun (tg : Tenant.tagged) ->
          let id = tg.Tenant.req.Request.id in
          let dup = Hashtbl.mem seen id in
          Hashtbl.replace seen id ();
          (not dup)
          && (not (Hashtbl.mem running id))
          && not (Hashtbl.mem statuses id))
        offer
    in
    List.iter
      (fun (tg : Tenant.tagged) ->
        ignore (drop_copy tg.Tenant.req);
        incr hedge_cancels)
      stale;
    let tagged_of =
      let table = Hashtbl.create 8 in
      List.iter
        (fun tg -> Hashtbl.replace table tg.Tenant.req.Request.id tg)
        fresh;
      fun (req : Request.t) -> Hashtbl.find table req.Request.id
    in
    let d =
      Batcher.admit config.batcher ~now ~in_flight
        ~waiting:(List.map (fun tg -> tg.Tenant.req) fresh)
    in
    List.iter
      (fun req -> Wfq.push_front c.c_q (tagged_of req))
      (List.rev d.Batcher.deferred);
    List.iter
      (fun (req : Request.t) ->
        (* The batcher shed one copy; the request only resolves as
           dropped when no sibling copy remains in flight. *)
        if drop_copy req <= 0 then set_status req Dropped
        else incr hedge_cancels)
      d.Batcher.dropped;
    List.iter
      (fun (req : Request.t) -> Hashtbl.replace running req.Request.id ())
      d.Batcher.admitted;
    s.sl_act <-
      s.sl_act
      @ List.map
          (fun (req : Request.t) ->
            {
              a_tg = tagged_of req;
              a_remaining = req.Request.output_len;
              a_kv = 0;
              a_prefill = req.Request.prompt_len;
              a_first = nan;
            })
          d.Batcher.admitted;
    if s.sl_act = [] then
      s.sl_clock <- (if d.Batcher.dropped <> [] then now else now +. 1e-6)
    else begin
      incr qsamples;
      qsum := !qsum + queued_total ();
      let engine = c.c_backend.Backend.bk_engine in
      let tokens =
        List.fold_left
          (fun acc a -> acc + if a.a_prefill > 0 then a.a_prefill else 1)
          0 s.sl_act
      in
      let kv_tokens = List.fold_left (fun acc a -> acc + a.a_kv) 0 s.sl_act in
      let btokens =
        if config.coalesce then
          List.fold_left
            (fun acc a ->
              acc
              + if a.a_prefill > 0 then
                  Bucketing.bucket config.bucketing a.a_prefill
                else 1)
            0 s.sl_act
        else Bucketing.bucket config.bucketing tokens
      in
      actual_tokens := !actual_tokens + tokens;
      padded_tokens := !padded_tokens + btokens;
      (* Program lookup ladder: replica cache, then the class-shared
         store (stall-free once its publishing compile finished), then
         an on-path compile that stalls this step and publishes
         class-wide — never fleet-wide: the other device class has a
         different fingerprint and different micro-kernels. *)
      let stall = ref 0. in
      let launch_shapes =
        if config.coalesce then begin
          let prefills = List.filter (fun a -> a.a_prefill > 0) s.sl_act in
          let decodes = List.length s.sl_act - List.length prefills in
          let buckets =
            List.sort_uniq compare
              (List.map
                 (fun a -> Bucketing.bucket config.bucketing a.a_prefill)
                 prefills)
          in
          List.concat_map
            (fun b -> engine.Sch.step_shapes ~tokens:b)
            buckets
          @ (if decodes > 0 then
               engine.Sch.step_shapes
                 ~tokens:(Bucketing.bucket config.bucketing decodes)
             else [])
        end
        else engine.Sch.step_shapes ~tokens:btokens
      in
      List.iter
        (fun ((shape : Shape_cache.key), launches) ->
          for _ = 1 to launches do
            match Shape_cache.find s.sl_cache shape with
            | Some () -> ()
            | None ->
              let store_ready =
                match Shape_cache.find c.c_store shape with
                | Some ready when ready <= now -> true
                | _ -> false
              in
              if store_ready then Shape_cache.add s.sl_cache shape ()
              else begin
                let cst = engine.Sch.compile_seconds shape in
                stall := !stall +. cst;
                Shape_cache.add s.sl_cache shape ();
                Shape_cache.add c.c_store shape (now +. !stall)
              end
          done)
        launch_shapes;
      let step_idx = s.sl_step in
      s.sl_step <- s.sl_step + 1;
      let base_slow =
        Plan.step_slowdown faults ~replica:s.sl_global ~step:step_idx
      in
      if base_slow > 1. then incr injected;
      let cls_slow = Plan.class_slowdown faults ~cls:c.c_idx ~now in
      if cls_slow > 1. then begin
        incr injected;
        c.c_brownout_steps <- c.c_brownout_steps + 1
      end;
      let slowdown = base_slow *. cls_slow in
      let dt =
        (engine.Sch.step_seconds ~tokens:btokens ~kv_tokens +. !stall)
        *. slowdown
      in
      stall_total := !stall_total +. !stall;
      c.c_stall <- c.c_stall +. !stall;
      c.c_service <- c.c_service +. dt;
      c.c_steps <- c.c_steps + 1;
      let fin = now +. dt in
      let down = Plan.class_down faults ~cls:c.c_idx ~now in
      if down then incr injected;
      let fails =
        down || Plan.step_fails faults ~replica:s.sl_global ~step:step_idx
      in
      if fails && not down then incr injected;
      (* Health sees every step, in both arms — the no-failover arm
         records the same trips, it just never acts on them. *)
      let verdict =
        Health.observe c.c_health ~now:fin ~slowdown ~failed:fails
      in
      if fails then begin
        if config.failover && verdict = `Tripped then
          (* The trip edge: this replica's batch and everything else the
             class holds drains to the surviving class. *)
          drain c ~now:fin
        else begin
          c.c_requeues <- c.c_requeues + List.length s.sl_act;
          requeues := !requeues + List.length s.sl_act;
          List.iter
            (fun a ->
              Hashtbl.remove running a.a_tg.Tenant.req.Request.id;
              Wfq.push_front c.c_q a.a_tg)
            (List.rev s.sl_act)
        end;
        s.sl_act <- []
      end
      else
        s.sl_act <-
          List.filter
            (fun a ->
              if a.a_prefill > 0 then begin
                a.a_kv <- a.a_prefill;
                a.a_prefill <- 0;
                true
              end
              else begin
                a.a_kv <- a.a_kv + 1;
                a.a_remaining <- a.a_remaining - 1;
                if Float.is_nan a.a_first then a.a_first <- fin;
                if a.a_remaining = 0 then begin
                  let req = a.a_tg.Tenant.req in
                  Hashtbl.remove running req.Request.id;
                  ignore (drop_copy req);
                  let comp =
                    {
                      Sch.request = req;
                      first_token = a.a_first;
                      finish = fin;
                      replica = s.sl_global;
                    }
                  in
                  completed := comp :: !completed;
                  c.c_completed <- c.c_completed + 1;
                  set_status req Completed;
                  false
                end
                else true
              end)
            s.sl_act;
      s.sl_clock <- fin;
      makespan := Float.max !makespan fin;
      incr steps
    end
  in
  let rec loop () =
    let best = ref None in
    let consider time prio payload =
      match !best with
      | Some (bt, bp, _) when bt < time || (bt = time && bp <= prio) -> ()
      | _ -> best := Some (time, prio, payload)
    in
    (match !crashes_left with
    | (t, i) :: _ -> consider t prio_crash (`Crash i)
    | [] -> ());
    (match !pending with
    | tg :: _ -> consider tg.Tenant.req.Request.arrival prio_arrival `Arrival
    | [] -> ());
    (match hedge_next () with
    | Some (t, c, tg) -> consider t prio_hedge (`Hedge (c, tg))
    | None -> ());
    Array.iter
      (fun c ->
        Array.iter
          (fun s ->
            match slot_next_time c s with
            | Some t -> consider t prio_step (`Step (c, s))
            | None -> ())
          c.c_slots)
      classes;
    match !best with
    | None -> ()
    | Some (t, _, payload) ->
      floor_now := Float.max !floor_now t;
      (match payload with
      | `Crash i ->
        crashes_left := List.tl !crashes_left;
        do_crash i ~now:t
      | `Arrival ->
        let tg = List.hd !pending in
        pending := List.tl !pending;
        do_arrival tg ~now:t
      | `Hedge (c, tg) -> do_hedge c tg ~now:t
      | `Step (c, s) -> do_step c s ~now:t);
      if work_remains () || !pending <> [] || !crashes_left <> [] then loop ()
      else ()
  in
  loop ();
  let tenant_of = Tenant.lookup trace in
  let tiers =
    List.map
      (fun tier ->
        let of_tier id = (tenant_of id).Tenant.tier = tier in
        let reqs =
          List.length
            (List.filter
               (fun (tg : Tenant.tagged) -> tg.Tenant.tenant.Tenant.tier = tier)
               trace)
        in
        let comps =
          List.filter
            (fun (comp : Sch.completed) ->
              of_tier comp.Sch.request.Request.id)
            !completed
        in
        let met = List.length (List.filter Fleet.slo_met comps) in
        {
          Fleet.tm_tier = tier;
          tm_requests = reqs;
          tm_completed = List.length comps;
          tm_slo_met = met;
          tm_attainment =
            (if reqs = 0 then 1. else float_of_int met /. float_of_int reqs);
        })
      Tenant.tiers
  in
  let class_stats =
    Array.to_list classes
    |> List.map (fun c ->
           let b = c.c_backend in
           let bstats = Health.breaker_stats c.c_health in
           {
             cs_backend = b.Backend.bk_name;
             cs_kind = Backend.kind_name b.Backend.bk_kind;
             cs_fingerprint = b.Backend.bk_fingerprint;
             cs_replicas = b.Backend.bk_replicas;
             cs_pes = b.Backend.bk_replicas * b.Backend.bk_pes;
             cs_routed = c.c_routed;
             cs_completed = c.c_completed;
             cs_steps = c.c_steps;
             cs_stall_seconds = c.c_stall;
             cs_service_seconds = c.c_service;
             cs_requeues = c.c_requeues;
             cs_reroutes_out = c.c_rr_out;
             cs_reroutes_in = c.c_rr_in;
             cs_hedges_in = c.c_hedges_in;
             cs_forced = c.c_forced;
             cs_probes = bstats.Mikpoly_fault.Breaker.probes;
             cs_trips = bstats.Mikpoly_fault.Breaker.trips;
             cs_drains = c.c_drains;
             cs_brownout_steps = c.c_brownout_steps;
             cs_degraded_entries = Health.degraded_entries c.c_health;
             cs_level_transitions = Health.transitions c.c_health;
             cs_final_level = Health.level_name (Health.level c.c_health);
             cs_cache =
               (Array.to_list c.c_slots
               |> List.map (fun s -> Shape_cache.stats s.sl_cache))
               @ List.rev c.c_retired;
             cs_store = Shape_cache.stats c.c_store;
           })
  in
  let status_pairs =
    List.filter_map
      (fun (tg : Tenant.tagged) ->
        match Hashtbl.find_opt statuses tg.Tenant.req.Request.id with
        | Some st -> Some (tg.Tenant.req, st)
        | None -> None)
      trace
  in
  let digest =
    List.map
      (fun ((req : Request.t), st) ->
        string_of_int req.Request.id ^ "=" ^ status_name st)
      status_pairs
    |> List.sort compare |> String.concat "\n" |> Checksum.fnv1a64_hex
  in
  let conserved =
    List.length status_pairs = List.length trace
    && List.length !completed + List.length !dropped
       + List.length !rate_limited
       = List.length trace
    && !resolved = List.length trace
  in
  {
    o_completed = List.rev !completed;
    o_dropped = !dropped;
    o_rate_limited = !rate_limited;
    o_steps = !steps;
    o_makespan = !makespan;
    o_stall_seconds = !stall_total;
    o_actual_tokens = !actual_tokens;
    o_padded_tokens = !padded_tokens;
    o_queue_depth_sum = !qsum;
    o_queue_samples = !qsamples;
    o_crashes = !crash_count;
    o_injected_faults = !injected;
    o_requeues = !requeues;
    o_reroutes = !reroutes;
    o_hedges = !hedges;
    o_hedge_cancels = !hedge_cancels;
    o_classes = class_stats;
    o_tiers = tiers;
    o_statuses = status_pairs;
    o_status_digest = digest;
    o_conserved = conserved;
  }

let to_scheduler_outcome (o : outcome) : Sch.outcome =
  {
    Sch.completed = o.o_completed;
    dropped = o.o_dropped;
    rejected = List.map (fun r -> (r, "rate-limited")) o.o_rate_limited;
    timed_out = [];
    failed = [];
    steps = o.o_steps;
    makespan = o.o_makespan;
    compile_stall_seconds = o.o_stall_seconds;
    adapt_stall_seconds = 0.;
    actual_tokens = o.o_actual_tokens;
    padded_tokens = o.o_padded_tokens;
    cache = List.concat_map (fun cs -> cs.cs_cache) o.o_classes;
    queue_depth_sum = o.o_queue_depth_sum;
    queue_samples = o.o_queue_samples;
    retries = o.o_requeues;
    crashes = o.o_crashes;
    injected_faults = o.o_injected_faults;
  }

let cache_labels (o : outcome) =
  List.concat_map
    (fun cs ->
      let live =
        List.init cs.cs_replicas (fun i ->
            cs.cs_backend ^ "-" ^ string_of_int i)
      in
      let retired = List.length cs.cs_cache - cs.cs_replicas in
      live
      @ List.init (max 0 retired) (fun i ->
            "crashed-" ^ cs.cs_backend ^ "-" ^ string_of_int i))
    o.o_classes

let class_stalls (o : outcome) =
  List.map (fun cs -> (cs.cs_backend, cs.cs_stall_seconds)) o.o_classes
