(** A device class serving inside a heterogeneous fleet.

    One backend = one accelerator class (GPU tensor cores or NPU
    cubes), one engine compiled by that class's compiler, and a pinned
    replica count. Kernel stores, calibration profiles and rank models
    are all keyed by {!Mikpoly_accel.Hardware.fingerprint}, so each
    class's artifacts stay separate — the PR-4 fingerprint plumbing is
    what makes per-class stores free. *)

type t = {
  bk_name : string;  (** display name, e.g. ["gpu"] / ["npu"] *)
  bk_kind : Mikpoly_accel.Hardware.kind;
  bk_fingerprint : string;
      (** {!Mikpoly_accel.Hardware.fingerprint} of the class hardware —
          the key for its kernel store / calibration / ranker artifacts *)
  bk_pes : int;  (** PEs per replica of this class *)
  bk_replicas : int;  (** replicas this class contributes to the fleet *)
  bk_engine : Mikpoly_serve.Scheduler.engine;
}

val kind_name : Mikpoly_accel.Hardware.kind -> string
(** ["gpu"] or ["npu"]. *)

val make :
  ?name:string ->
  hw:Mikpoly_accel.Hardware.t ->
  replicas:int ->
  Mikpoly_serve.Scheduler.engine ->
  t
(** [name] defaults to {!kind_name} of the hardware. Raises
    [Invalid_argument] when [replicas < 1]. *)

val total_pes : t list -> int
(** Σ replicas · PEs-per-replica — the capacity side of the equal-PE
    mixed-vs-single-backend comparison. *)
