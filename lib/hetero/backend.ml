module Hardware = Mikpoly_accel.Hardware

type t = {
  bk_name : string;
  bk_kind : Hardware.kind;
  bk_fingerprint : string;
  bk_pes : int;
  bk_replicas : int;
  bk_engine : Mikpoly_serve.Scheduler.engine;
}

let kind_name = function Hardware.Gpu -> "gpu" | Hardware.Npu -> "npu"

let make ?name ~hw ~replicas engine =
  if replicas < 1 then invalid_arg "Backend: replicas must be >= 1";
  {
    bk_name = (match name with Some n -> n | None -> kind_name hw.Hardware.kind);
    bk_kind = hw.Hardware.kind;
    bk_fingerprint = Hardware.fingerprint hw;
    bk_pes = hw.Hardware.num_pes;
    bk_replicas = replicas;
    bk_engine = engine;
  }

let total_pes backends =
  List.fold_left (fun acc b -> acc + (b.bk_pes * b.bk_replicas)) 0 backends
