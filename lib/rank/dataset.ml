module Compiler = Mikpoly_core.Compiler
module Kernel_set = Mikpoly_core.Kernel_set
module Polymerize = Mikpoly_core.Polymerize
module Pattern = Mikpoly_core.Pattern
module Config = Mikpoly_core.Config
module Hardware = Mikpoly_accel.Hardware
module Operator = Mikpoly_ir.Operator
module Region = Mikpoly_ir.Region
module Program = Mikpoly_ir.Program
module Prng = Mikpoly_util.Prng

type example = {
  ex_features : float array;
  ex_target : float;
  ex_shape : int * int * int;
  ex_kernel : int * int * int;
  ex_raw : float;
  ex_observed : float;
}

let ceil_div a b = (a + b - 1) / b

(* Deterministic log-uniform GEMM shapes, the range the adaptation
   scenario probes; [distinct] shapes so train/holdout splits by prefix
   never alias. *)
let sample_shapes ~seed ~count =
  let rng = Prng.create seed in
  let seen = Hashtbl.create 64 in
  let rec draw budget =
    let s =
      ( Prng.log_int_in rng 64 2048,
        Prng.log_int_in rng 64 2048,
        Prng.log_int_in rng 64 1024 )
    in
    if Hashtbl.mem seen s && budget > 0 then draw (budget - 1)
    else begin
      Hashtbl.replace seen s ();
      s
    end
  in
  List.init count (fun _ -> draw 64)

let harvest ~(compiler : Compiler.t) ?hw shapes =
  let device =
    match hw with Some h -> h | None -> Compiler.hardware compiler
  in
  let set = Compiler.kernels compiler in
  let dtype = (Compiler.config compiler).Config.dtype in
  let acc = ref [] in
  (* Observations flow through the compiler's residual-feedback hook —
     the same channel the adaptation layer listens on. The hook is
     temporarily ours; callers that keep a live adapter should harvest on
     a dedicated compiler. *)
  Compiler.set_observer compiler (Some (fun ob -> acc := ob :: !acc));
  Fun.protect
    ~finally:(fun () -> Compiler.set_observer compiler None)
    (fun () ->
      List.iter
        (fun (m, n, k) ->
          let op = Operator.gemm ~dtype ~m ~n ~k () in
          Array.iter
            (fun (e : Kernel_set.entry) ->
              (* One single-region Pattern-I program per kernel: the same
                 per-kernel probe grid the ranking evaluator scores, so
                 training targets and evaluation candidates coincide. *)
              let region =
                Region.make ~row_off:0 ~col_off:0 ~rows:m ~cols:n ~k_len:k
                  ~kernel:e.desc
              in
              let program =
                Program.make ~op ~regions:[ region ] ~pattern_name:"I"
              in
              let compiled =
                {
                  Polymerize.program;
                  predicted_cost = 0.;
                  pattern = Pattern.I;
                  candidates = 1;
                  pruned = 0;
                  pruned_analytic = 0;
                  search_seconds = 0.;
                  deadline_hit = false;
                  first_hit = 1;
                }
              in
              ignore (Compiler.simulate_observed ~hw:device compiler compiled))
            set.entries)
        shapes);
  List.concat_map
    (fun (ob : Compiler.observation) ->
      let m, n, k = ob.ob_shape in
      List.filter_map
        (fun (r : Compiler.region_observation) ->
          let d = r.ro_kernel in
          match Kernel_set.find set ~um:d.um ~un:d.un ~uk:d.uk with
          | None -> None
          | Some e ->
            let waves = ceil_div r.ro_n_tasks e.wave_capacity in
            let pipe = r.ro_predicted /. float_of_int waves in
            let features =
              Features.of_candidate ~hw:device ~m ~n ~k ~um:d.um ~un:d.un
                ~uk:d.uk ~wave_capacity:e.wave_capacity
                ~n_tasks:r.ro_n_tasks ~pipe
            in
            let target =
              log
                (Float.max 1e-9 r.ro_observed
                /. Float.max 1e-9 r.ro_predicted)
            in
            Some
              {
                ex_features = features;
                ex_target = target;
                ex_shape = (m, n, k);
                ex_kernel = (d.um, d.un, d.uk);
                ex_raw = r.ro_predicted;
                ex_observed = r.ro_observed;
              })
        ob.ob_regions)
    (List.rev !acc)
