(** The learned candidate-ordering oracle.

    A two-stage predictor bound to the hardware it was fit on: a
    per-kernel {!Mikpoly_adapt.Calibration} of raw Eq. 2, with
    gradient-boosted stumps ({!Model}) fitted to the calibration's
    residuals over the shared {!Features}. A 0-stump ranker is exactly
    calibrated Eq. 2; boosting can only add the shape-dependent
    structure per-kernel curves cannot express. Online it
    plugs into the polymerization search as {!Mikpoly_core.Config.ranker}
    — a {e visitation-order} hint only: Equation 2 remains the sole
    pruning and tie-break authority, so with no
    [search_deadline_ms] the chosen program is bit-identical with the
    ranker on or off; under a deadline, best-first visitation is what
    lets the truncated search keep the full-search winner. *)

type t

val model : t -> Model.t
val calibration : t -> Mikpoly_adapt.Calibration.t
val hardware : t -> Mikpoly_accel.Hardware.t

val train :
  ?rounds:int -> ?learning_rate:float -> ?seed:int ->
  hw:Mikpoly_accel.Hardware.t -> Dataset.example list -> t
(** Fit from scratch on one platform's harvested examples: first the
    per-kernel calibration, then stumps on its log residuals. *)

val warm_start :
  ?rounds:int -> ?learning_rate:float -> ?seed:int -> ?damping:float ->
  base:t -> hw:Mikpoly_accel.Hardware.t -> Dataset.example list -> t
(** Cross-fingerprint transfer: the target platform gets its own
    calibration (curves key on its kernel set), while [base]'s splits on
    the hardware-independent shape features ({!Features.shape_dim}
    prefix) are kept with leaf weights scaled by [damping] (default 0.5)
    — a prior rather than an assertion — and boosting continues on the
    target's examples with the same free-round budget a cold fit would
    get. Where the prior contradicts the target's observations the
    continuation cancels it; where the tiny budget is silent, the
    prior's shape structure stands. At a small target budget this
    halves top-1 regret against a cold fit of the same size — the
    GPU→NPU gate of the ranking experiment. *)

val save : path:string -> t -> unit
val load :
  path:string -> hw:Mikpoly_accel.Hardware.t -> (t, string) result
(** {!Store} round-trip; [load] validates platform, fingerprint, feature
    schema and checksum, and never raises. *)

val score :
  t -> m:int -> n:int -> k:int -> um:int -> un:int -> uk:int ->
  wave_capacity:int -> n_tasks:int -> pipe:float -> float
(** Predicted region cost: calibrated Eq.-2 (per-kernel curve applied to
    waves × pipe) scaled by the exponentiated boosted log-residual.
    Never negative. *)

val config_ranker : t -> Mikpoly_core.Config.ranker
(** Package {!score} as the search's candidate-ordering oracle;
    [rk_id] is {!Features.schema_id} (cache-key-excluded — ordering
    cannot change an un-truncated search's output). *)

val ranking_scorer :
  t -> int * int * int -> Mikpoly_core.Kernel_set.entry -> float -> float
(** Adapter for {!Mikpoly_adapt.Ranking.evaluate}'s [?scorer] hook:
    rebuilds the search-side score from the evaluator's single-region
    candidate. *)

val calibration_of_examples :
  fingerprint:string -> Dataset.example list ->
  Mikpoly_adapt.Calibration.t
(** The calibrated-Eq.-2 baseline fit from the {e same} harvested
    examples the learner trains on — both the equal-information
    comparison the ranking experiment gates against and {!train}'s first
    stage. *)

type ab = {
  ab_shapes : int;
  ab_identical : bool;
      (** every shape's no-deadline program was bit-identical with the
          ranker on and off — the ordering-soundness oracle *)
  ab_first_hit_plain : int;  (** summed {!Mikpoly_core.Polymerize.compiled.first_hit}, plain order *)
  ab_first_hit_ranked : int;  (** same, best-first order *)
  ab_deadline_matches_plain : int;
      (** shapes where the deadline-truncated plain search still found the
          full-search winner *)
  ab_deadline_matches_ranked : int;
  ab_rescues : int;
      (** shapes the ranked order saved: truncated-ranked matched the
          full-search winner where truncated-plain did not (also counted
          on the [rank.deadline_rescues] telemetry counter) *)
}

val deadline_ab :
  ?deadline_frac:float -> compiler:Mikpoly_core.Compiler.t -> t ->
  (int * int * int) list -> ab
(** Per shape: run the calibrated-scorer search (the ranker's own
    per-kernel correction, unpruned — the calibrated-serving regime) with
    and without the ranker ordering, first untruncated (asserting
    bit-identity), then under a [search_deadline_ms] budget of
    [deadline_frac] (default 0.35) of the plain search's
    {!Mikpoly_core.Polymerize.modeled_search_seconds}. Deterministic. *)
