(** Deterministic feature extractor for the learned candidate ranker.

    One candidate = one (problem shape, micro-kernel, hardware) triple —
    exactly the quantities {!Mikpoly_core.Config.ranker}'s [rk_score]
    receives online and a {!Mikpoly_core.Compiler} observation carries
    offline, so training and serving compute bit-identical vectors. All
    extensive quantities enter in log scale; hardware constants occupy a
    fixed suffix of the vector so models transfer across fingerprints
    through the shared shape/kernel prefix. *)

val schema_version : int

val names : string array
(** Feature names, index-aligned with {!of_candidate}'s result. *)

val dim : int

val shape_dim : int
(** Length of the hardware-independent prefix of the vector. *)

val schema_id : string
(** Versioned identity of the feature layout (version + checksum of
    {!names}); embedded in model artifacts and checked on load. *)

val of_candidate :
  hw:Mikpoly_accel.Hardware.t -> m:int -> n:int -> k:int -> um:int ->
  un:int -> uk:int -> wave_capacity:int -> n_tasks:int -> pipe:float ->
  float array
(** Pure and total for positive dimensions; [pipe] is the kernel's
    Eq.-2 pipeline term for this reduction extent (raw, uncorrected). *)
