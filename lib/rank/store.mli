(** Versioned, checksummed on-disk ranker artifacts.

    Header: magic line, platform name, hardware fingerprint,
    {!Features.schema_id}, body checksum; body: the ranker's calibration
    stage ({!Mikpoly_adapt.Calibration.to_string}) followed by its
    boosted-stump stage ({!Model.to_string}). Writes are atomic (tempfile
    + rename). Loads validate each header line in order and return a
    distinct [Error] per failure mode — unrecognized magic, wrong
    platform, wrong fingerprint, wrong feature schema, checksum mismatch,
    truncation, malformed body — so callers can log why a model was
    refused and fall back to calibrated Eq. 2. Loading never raises. *)

val magic : string

val save :
  path:string -> Mikpoly_accel.Hardware.t ->
  Mikpoly_adapt.Calibration.t * Model.t -> unit

val load :
  path:string -> Mikpoly_accel.Hardware.t ->
  (Mikpoly_adapt.Calibration.t * Model.t, string) result
