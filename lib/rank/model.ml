(* Gradient-boosted decision stumps over the Features vector, fitted to
   log-residual targets. Pure OCaml, no dependencies, and bit-reproducible:
   the greedy split search scans features in index order and thresholds in
   ascending order, taking the first strict improvement — so equal-gain
   splits resolve to (lowest feature, lowest threshold) and the same
   training set always yields the same model. Row subsampling, when
   enabled, draws from a seeded splitmix64 stream. *)

module Prng = Mikpoly_util.Prng

type stump = {
  s_feature : int;
  s_threshold : float;
  s_left : float;  (** added when [x.(s_feature) <= s_threshold] *)
  s_right : float;
}

type t = {
  base : float;
  stumps : stump list;  (** in boosting order; contributions sum *)
}

let constant base = { base; stumps = [] }

let n_stumps t = List.length t.stumps

let predict t x =
  List.fold_left
    (fun acc s ->
      acc +. (if x.(s.s_feature) <= s.s_threshold then s.s_left else s.s_right))
    t.base t.stumps

(* Best stump for the current residuals on one feature: examples sorted
   by feature value, every midpoint between distinct consecutive values a
   candidate threshold; the SSE reduction of a split with mean leaves is
   S_L²/n_L + S_R²/n_R − S²/n, so maximizing the first two terms
   suffices. Returns (gain, threshold, left_sum, left_n). *)
let best_split_on xs residuals rows feature =
  let sorted =
    let a = Array.copy rows in
    Array.sort
      (fun i j ->
        match compare xs.(i).(feature) xs.(j).(feature) with
        | 0 -> compare i j
        | c -> c)
      a;
    a
  in
  let n = Array.length sorted in
  let total = Array.fold_left (fun acc i -> acc +. residuals.(i)) 0. sorted in
  let best = ref None in
  let left_sum = ref 0. in
  for pos = 0 to n - 2 do
    let i = sorted.(pos) in
    left_sum := !left_sum +. residuals.(i);
    let here = xs.(i).(feature) and next = xs.(sorted.(pos + 1)).(feature) in
    if here < next then begin
      let nl = float_of_int (pos + 1) and nr = float_of_int (n - pos - 1) in
      let sl = !left_sum in
      let sr = total -. sl in
      let gain = (sl *. sl /. nl) +. (sr *. sr /. nr) in
      let threshold = here +. ((next -. here) /. 2.) in
      match !best with
      | Some (g, _, _, _) when g >= gain -> ()
      | _ -> best := Some (gain, threshold, sl, pos + 1)
    end
  done;
  !best

let fit ?base ?(rounds = 64) ?(learning_rate = 0.25) ?(seed = 0)
    ?(subsample = 1.0) ~features:xs ~targets () =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Model.fit: no examples";
  if Array.length targets <> n then
    invalid_arg "Model.fit: features/targets length mismatch";
  if rounds < 0 then invalid_arg "Model.fit: negative rounds";
  if not (subsample > 0. && subsample <= 1.) then
    invalid_arg "Model.fit: subsample must be in (0, 1]";
  let dim = Array.length xs.(0) in
  let model =
    match base with
    | Some m -> m
    | None ->
      (* Cold fit: the base is the target mean, so a 0-round model is the
         best constant predictor. *)
      constant (Array.fold_left ( +. ) 0. targets /. float_of_int n)
  in
  let pred = Array.init n (fun i -> predict model xs.(i)) in
  let residuals = Array.init n (fun i -> targets.(i) -. pred.(i)) in
  let rng = Prng.create seed in
  let new_stumps = ref [] in
  (try
     for _round = 1 to rounds do
       let rows =
         if subsample >= 1. then Array.init n Fun.id
         else begin
           (* One draw per example in index order — the sample depends
              only on (seed, round), never on array contents. *)
           let keep =
             Array.init n (fun _ -> Prng.float rng 1.0 < subsample)
           in
           let sel = ref [] in
           for i = n - 1 downto 0 do
             if keep.(i) then sel := i :: !sel
           done;
           if !sel = [] then [| 0 |] else Array.of_list !sel
         end
       in
       let best = ref None in
       for f = 0 to dim - 1 do
         match best_split_on xs residuals rows f with
         | None -> ()
         | Some (gain, threshold, sl, nl) -> (
           match !best with
           | Some (g, _, _, _, _, _) when g >= gain -> ()
           | _ -> best := Some (gain, f, threshold, sl, nl, Array.length rows))
       done;
       match !best with
       | None -> raise Exit (* every feature constant on the sample *)
       | Some (_, f, threshold, sl, nl, nrows) ->
         let total =
           Array.fold_left (fun acc i -> acc +. residuals.(i)) 0. rows
         in
         let left = learning_rate *. (sl /. float_of_int nl) in
         let right =
           learning_rate *. ((total -. sl) /. float_of_int (nrows - nl))
         in
         let s = { s_feature = f; s_threshold = threshold; s_left = left; s_right = right } in
         new_stumps := s :: !new_stumps;
         for i = 0 to n - 1 do
           residuals.(i) <-
             residuals.(i)
             -. (if xs.(i).(f) <= threshold then left else right)
         done
     done
   with Exit -> ());
  { model with stumps = model.stumps @ List.rev !new_stumps }

(* %h hex floats round-trip every finite double exactly, so serialize →
   parse → serialize is byte-stable and the artifact checksum is a true
   model identity. *)
let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "base %h\n" t.base);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "stump %d %h %h %h\n" s.s_feature s.s_threshold
           s.s_left s.s_right))
    t.stumps;
  Buffer.contents b

let of_string s =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> failwith "empty model body"
  | base_line :: rest ->
    let base =
      match String.split_on_char ' ' base_line with
      | [ "base"; v ] -> float_of_string v
      | _ -> failwith "malformed model base line"
    in
    let stump line =
      match String.split_on_char ' ' line with
      | [ "stump"; f; th; l; r ] ->
        let f = int_of_string f in
        if f < 0 then failwith "negative stump feature";
        {
          s_feature = f;
          s_threshold = float_of_string th;
          s_left = float_of_string l;
          s_right = float_of_string r;
        }
      | _ -> failwith "malformed stump line"
    in
    { base; stumps = List.map stump rest }

let equal a b = to_string a = to_string b
