module Hardware = Mikpoly_accel.Hardware

let schema_version = 1

(* The feature names are part of the schema identity: adding, removing or
   reordering a feature changes [schema_id], and the artifact store
   rejects models written under a different schema — a model trained on
   one feature layout is never silently applied to another. The first
   [shape_dim] features depend only on the (shape × kernel-geometry)
   candidate and carry platform-independent meaning; the rest are
   platform-local — the kernel-set identity feature and the hardware
   constants. Cross-fingerprint transfer rides on that split: stumps
   fitted on GPU observations that split on shape features remain
   informative on the NPU, while splits on the local suffix would encode
   the source platform (a per-kernel intercept is exactly as
   non-transferable as a calibration curve) and are dropped. *)
let names =
  [|
    "log_m";
    "log_n";
    "log_k";
    "aspect_mn";
    "log_tasks";
    "last_wave_fill";
    "pad_m";
    "pad_n";
    "pad_k";
    "log_um";  (* first platform-local feature: index [shape_dim] *)
    "log_un";
    "log_uk";
    "log_waves";
    "log_pipe";
    "log_raw";
    "tile_id";
    "hw_kind";
    "log_pes";
    "log_clock";
    "log_matrix_flops";
    "log_local_mem";
    "log_fabric_bpc";
    "log_dram_bpc";
    "log_matrix_slots";
    "log_launch_cycles";
  |]

let dim = Array.length names

(* Only mechanism-driven, scale-free quantities qualify as transferable.
   Log problem extents and aspect are pure shape — within one shape they
   are constant across candidates, so (the ranker only ever compares
   within a shape) stumps on them are ranking-neutral and cannot mislead
   a target platform. Task counts and the padding/fill ratios couple
   shape to kernel geometry through effects whose sign survives a
   platform change (doubled launch overhead bites low task counts;
   wasted last-wave capacity and padding bite wherever they occur).
   Everything else is platform-local: tile-extent thresholds learned on
   one platform's kernel set partition another's arbitrarily (a wrong
   per-kernel intercept), and wave counts, pipeline depths and raw cycle
   predictions carry platform-scale magnitudes. *)
let shape_dim = 9

let schema_id =
  Printf.sprintf "rank-fs-v%d-%s" schema_version
    (Mikpoly_util.Checksum.fnv1a64_hex
       (String.concat "," (Array.to_list names)))

let ceil_div a b = (a + b - 1) / b

let logf x = log (Float.max 1e-12 x)

let logi i = logf (float_of_int i)

let of_candidate ~(hw : Hardware.t) ~m ~n ~k ~um ~un ~uk ~wave_capacity
    ~n_tasks ~pipe =
  let waves = ceil_div n_tasks wave_capacity in
  let raw = float_of_int waves *. pipe in
  (* Tasks in the (partial) last wave: 1.0 = the wave quantization is
     free, small values = most of the last wave's capacity is wasted —
     the effect Eq. 2's ceiling models only coarsely. *)
  let last = n_tasks - ((waves - 1) * wave_capacity) in
  let pad extent u =
    float_of_int ((ceil_div extent u * u) - extent) /. float_of_int extent
  in
  [|
    logi m;
    logi n;
    logi k;
    logi m -. logi n;
    logi n_tasks;
    float_of_int last /. float_of_int wave_capacity;
    pad m um;
    pad n un;
    pad k uk;
    logi um;
    logi un;
    logi uk;
    logi waves;
    logf pipe;
    logf raw;
    (* Distinct value per tile geometry, ordered lexicographically by
       (uM, uN, uK): a handful of threshold splits isolates any one
       kernel, giving the additive stumps per-kernel intercepts — the
       expressiveness calibration's per-kernel curves get for free.
       Platform-local (outside [shape_dim]): an intercept for one
       platform's kernel is meaningless for another's that happens to
       share the tile. *)
    float_of_int ((um * 4096 * 4096) + (un * 4096) + uk);
    (match hw.kind with Hardware.Gpu -> 0. | Hardware.Npu -> 1.);
    logi hw.num_pes;
    logf hw.clock_hz;
    logf hw.matrix_flops_per_cycle;
    logi hw.local_mem_bytes;
    logf hw.fabric_bytes_per_cycle;
    logf hw.dram_bytes_per_cycle;
    logi hw.matrix_slots;
    logf (hw.launch_overhead_s *. hw.clock_hz);
  |]
