module Hardware = Mikpoly_accel.Hardware
module Calibration = Mikpoly_adapt.Calibration
module Profile_store = Mikpoly_adapt.Profile_store

(* Artifact layout (mirrors Profile_store v2 / kernel-set v3): a magic
   line, the platform name and fingerprint, the feature-schema id, a
   checksum over the body, then the body — the ranker's calibration
   stage ([kernel …] lines, the {!Calibration.to_string} form) followed
   by its boosted-stump stage ([base]/[stump] lines, the
   {!Model.to_string} form). Every validation failure is a distinct
   [Error] so callers can report why a ranker was refused before falling
   back to calibrated Eq. 2. *)
let magic = "mikpoly-rank v1"

let body_checksum body = Mikpoly_util.Checksum.fnv1a64_hex body

let save ~path (hw : Hardware.t) ((cal : Calibration.t), (model : Model.t)) =
  let body = Calibration.to_string cal ^ Model.to_string model in
  Mikpoly_util.Atomic_file.write ~path (fun oc ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "hw %s\n" hw.name;
      Printf.fprintf oc "fingerprint %s\n" (Hardware.fingerprint hw);
      Printf.fprintf oc "schema %s\n" Features.schema_id;
      Printf.fprintf oc "checksum %s\n" (body_checksum body);
      output_string oc body)

let load ~path (hw : Hardware.t) =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        match List.rev !lines with
        | header :: hw_line :: fp_line :: schema_line :: sum_line :: rest ->
          (* Both body serializers newline-terminate every line, so the
             body is exactly the remaining lines re-terminated. *)
          let body = String.concat "" (List.map (fun l -> l ^ "\n") rest) in
          if header <> magic then fail "unrecognized ranker model file"
          else if hw_line <> "hw " ^ hw.name then
            fail "ranker model was trained on a different platform (%s)"
              hw_line
          else if fp_line <> "fingerprint " ^ Hardware.fingerprint hw then
            fail
              "ranker model was trained for a different hardware \
               configuration (%s)"
              fp_line
          else if schema_line <> "schema " ^ Features.schema_id then
            fail "ranker model uses a different feature schema (%s)"
              schema_line
          else if sum_line <> "checksum " ^ body_checksum body then
            fail "ranker model failed checksum verification (corrupted artifact)"
          else begin
            let cal_lines, model_lines =
              List.partition (String.starts_with ~prefix:"kernel ") rest
            in
            try
              let cal =
                Calibration.of_curves
                  ~fingerprint:(Hardware.fingerprint hw)
                  (Profile_store.parse_body cal_lines)
              in
              let model =
                Model.of_string
                  (String.concat ""
                     (List.map (fun l -> l ^ "\n") model_lines))
              in
              Ok (cal, model)
            with Failure e | Invalid_argument e -> Error e
          end
        | _ -> fail "truncated ranker model file")
