(** Pure-OCaml gradient-boosted stumps — the learned ranking model.

    Trained offline on {!Features} vectors with log-residual targets
    (log observed∕predicted cycles of one region), applied online as a
    multiplicative correction to the raw Eq.-2 cost. Fitting is greedy
    least-squares with deterministic tie-breaks (lowest feature index,
    then lowest threshold), so the same observations always produce the
    same model, bit for bit; optional row subsampling draws from a seeded
    {!Mikpoly_util.Prng} stream. *)

type stump = {
  s_feature : int;
  s_threshold : float;
  s_left : float;
  s_right : float;
}

type t = {
  base : float;
  stumps : stump list;
}

val constant : float -> t
(** The 0-stump model predicting [base] everywhere. *)

val n_stumps : t -> int

val predict : t -> float array -> float

val fit :
  ?base:t -> ?rounds:int -> ?learning_rate:float -> ?seed:int ->
  ?subsample:float -> features:float array array -> targets:float array ->
  unit -> t
(** Fit [rounds] (default 64) stumps with shrinkage [learning_rate]
    (default 0.25). With [base], boosting {e continues} from the given
    model's predictions — the GPU→NPU warm start: the base's stumps are
    kept and the new rounds fit the base's residuals on the new data.
    Stops early when every feature is constant on the (sub)sample.
    Raises [Invalid_argument] on empty input, negative [rounds], or
    [subsample] outside (0, 1]. *)

val to_string : t -> string
(** Canonical text form ([%h] hex floats — exact round-trip); the
    artifact body {!Store} checksums. *)

val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val equal : t -> t -> bool
