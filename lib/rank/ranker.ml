module Compiler = Mikpoly_core.Compiler
module Kernel_set = Mikpoly_core.Kernel_set
module Polymerize = Mikpoly_core.Polymerize
module Config = Mikpoly_core.Config
module Calibration = Mikpoly_adapt.Calibration
module Hardware = Mikpoly_accel.Hardware
module Operator = Mikpoly_ir.Operator
module Program = Mikpoly_ir.Program
module Tm = Mikpoly_telemetry

let m_rescues = Tm.Metrics.counter "rank.deadline_rescues"

type t = {
  cal : Calibration.t;
  model : Model.t;
  hw : Hardware.t;
}

let model t = t.model
let calibration t = t.cal
let hardware t = t.hw

let ceil_div a b = (a + b - 1) / b

(* The calibrated-Eq.-2 baseline, fit from the very same harvested
   examples the learner trains on — both the equal-information comparison
   the ranking experiment gates against and the first stage of the
   ranker itself (the stumps boost its residuals, so a 0-stump ranker
   degenerates to exactly calibrated Eq. 2). *)
let calibration_of_examples ~fingerprint examples =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (e : Dataset.example) ->
      let prev =
        match Hashtbl.find_opt groups e.ex_kernel with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace groups e.ex_kernel ((e.ex_raw, e.ex_observed) :: prev))
    examples;
  let samples =
    Hashtbl.fold (fun key l acc -> (key, List.rev l) :: acc) groups []
  in
  let samples = List.sort compare samples in
  Calibration.fit ~fingerprint samples

let fit_arrays ~cal examples =
  let features =
    Array.of_list (List.map (fun e -> e.Dataset.ex_features) examples)
  in
  (* Boost what calibration leaves on the table: the log residual of the
     per-kernel-corrected prediction, not of raw Eq. 2 ([ex_target]) —
     centered per shape. Ranking (and the search's visitation order) only
     compares candidates {e within} one shape, so a shape-level offset is
     invisible to the ranker's job while dominating the uncentered SSE;
     removing it makes every boosting round spend its split on
     cross-kernel structure. *)
  let residual (e : Dataset.example) =
    log
      (Float.max 1e-9 e.ex_observed
      /. Float.max 1e-9 (Calibration.apply cal e.ex_kernel e.ex_raw))
  in
  let sums = Hashtbl.create 16 in
  List.iter
    (fun (e : Dataset.example) ->
      let s, c =
        match Hashtbl.find_opt sums e.ex_shape with
        | Some sc -> sc
        | None -> (0., 0)
      in
      Hashtbl.replace sums e.ex_shape (s +. residual e, c + 1))
    examples;
  let targets =
    Array.of_list
      (List.map
         (fun (e : Dataset.example) ->
           let s, c = Hashtbl.find sums e.ex_shape in
           residual e -. (s /. float_of_int c))
         examples)
  in
  (features, targets)

let train ?rounds ?learning_rate ?seed ~hw examples =
  let cal =
    calibration_of_examples ~fingerprint:(Hardware.fingerprint hw) examples
  in
  let features, targets = fit_arrays ~cal examples in
  {
    cal;
    model = Model.fit ?rounds ?learning_rate ?seed ~features ~targets ();
    hw;
  }

(* Only splits on shape features survive a fingerprint change: the
   hardware features are constant within one platform's dataset, so any
   split on them encodes the source device, not transferable structure. *)
let transferable (m : Model.t) =
  {
    m with
    Model.stumps =
      List.filter
        (fun (s : Model.stump) -> s.s_feature < Features.shape_dim)
        m.Model.stumps;
  }

let warm_start ?rounds ?learning_rate ?seed ?(damping = 0.5) ~base ~hw
    examples =
  (* The target platform always gets its own per-kernel calibration (the
     source platform's curves key on a different kernel set); what
     transfers is the boosted shape structure on top of it — damped, so
     the source acts as a prior rather than an assertion — and boosting
     then continues on the target's examples with the same free-round
     budget a cold fit would get. Where the prior contradicts the
     target's own observations the continuation cancels it (the
     continuation's targets are the prior's residuals); where the
     target's tiny budget is silent, the prior's shape structure stands. *)
  let prior =
    let m = transferable base.model in
    {
      m with
      Model.stumps =
        List.map
          (fun (s : Model.stump) ->
            {
              s with
              Model.s_left = damping *. s.Model.s_left;
              s_right = damping *. s.Model.s_right;
            })
          m.Model.stumps;
    }
  in
  let cal =
    calibration_of_examples ~fingerprint:(Hardware.fingerprint hw) examples
  in
  let features, targets = fit_arrays ~cal examples in
  {
    cal;
    model =
      Model.fit ~base:prior ?rounds ?learning_rate ?seed ~features ~targets ();
    hw;
  }

let save ~path t = Store.save ~path t.hw (t.cal, t.model)

let load ~path ~hw =
  Result.map (fun (cal, model) -> { cal; model; hw }) (Store.load ~path hw)

(* The ranking score: the calibrated Eq.-2 region cost scaled by the
   boosted residual. Exponentiating keeps the correction positive, and a
   zero-stump model degenerates to exactly calibrated Eq. 2. *)
let score t ~m ~n ~k ~um ~un ~uk ~wave_capacity ~n_tasks ~pipe =
  let features =
    Features.of_candidate ~hw:t.hw ~m ~n ~k ~um ~un ~uk ~wave_capacity
      ~n_tasks ~pipe
  in
  let waves = ceil_div n_tasks wave_capacity in
  let raw = float_of_int waves *. pipe in
  Calibration.apply t.cal (um, un, uk) raw *. exp (Model.predict t.model features)

let config_ranker t =
  {
    Config.rk_id = Features.schema_id;
    rk_score =
      (fun ~m ~n ~k ~um ~un ~uk ~wave_capacity ~n_tasks ~pipe ->
        score t ~m ~n ~k ~um ~un ~uk ~wave_capacity ~n_tasks ~pipe);
  }

(* Shape-aware scorer for [Ranking.evaluate ?scorer]: same score as the
   search-side oracle, reconstructed from the single-region candidate the
   evaluator builds (raw = waves × pipe for that candidate). *)
let ranking_scorer t (m, n, k) (e : Kernel_set.entry) raw =
  let d = e.desc in
  let n_tasks = ceil_div m d.um * ceil_div n d.un in
  let waves = ceil_div n_tasks e.wave_capacity in
  let pipe = raw /. float_of_int waves in
  score t ~m ~n ~k ~um:d.um ~un:d.un ~uk:d.uk
    ~wave_capacity:e.wave_capacity ~n_tasks ~pipe

type ab = {
  ab_shapes : int;
  ab_identical : bool;
  ab_first_hit_plain : int;
  ab_first_hit_ranked : int;
  ab_deadline_matches_plain : int;
  ab_deadline_matches_ranked : int;
  ab_rescues : int;
}

let deadline_ab ?(deadline_frac = 0.35) ~compiler t shapes =
  let set = Compiler.kernels compiler in
  let dtype = (Compiler.config compiler).Config.dtype in
  (* Both arms run the calibrated-serving regime — the ranker's own
     per-kernel correction as the search scorer, no analytic pruning
     (it only applies to the plain Full objective) — with no deadline
     first (the bit-identity oracle), then with the same fractional
     budget of the plain search's modeled cost. The ranker's score is
     the calibrated cost times its boosted residual, so best-first
     visitation chases exactly what this search minimizes. *)
  let scorer =
    Polymerize.Calibrated (Calibration.correction_for_set t.cal set)
  in
  let cfg_plain =
    {
      (Compiler.config compiler) with
      Config.ranker = None;
      search_deadline_ms = 0.;
      analytic_prune = false;
    }
  in
  let cfg_rank = { cfg_plain with Config.ranker = Some (config_ranker t) } in
  let identical = ref true in
  let fh_plain = ref 0 and fh_ranked = ref 0 in
  let dm_plain = ref 0 and dm_ranked = ref 0 in
  let rescues = ref 0 in
  let n = ref 0 in
  List.iter
    (fun (m, n_, k) ->
      incr n;
      let op = Operator.gemm ~dtype ~m ~n:n_ ~k () in
      let run cfg = Polymerize.polymerize ~scorer ~instrument:false set cfg op in
      let c0 = run cfg_plain in
      let c1 = run cfg_rank in
      let p0 = Program.to_string c0.program in
      if Program.to_string c1.program <> p0 then identical := false;
      fh_plain := !fh_plain + c0.first_hit;
      fh_ranked := !fh_ranked + c1.first_hit;
      let dms =
        1e3 *. deadline_frac *. Polymerize.modeled_search_seconds c0
      in
      let cp = run { cfg_plain with Config.search_deadline_ms = dms } in
      let cr = run { cfg_rank with Config.search_deadline_ms = dms } in
      let plain_ok = Program.to_string cp.program = p0 in
      let ranked_ok = Program.to_string cr.program = p0 in
      if plain_ok then incr dm_plain;
      if ranked_ok then incr dm_ranked;
      if ranked_ok && not plain_ok then begin
        incr rescues;
        Tm.Metrics.incr m_rescues
      end)
    shapes;
  {
    ab_shapes = !n;
    ab_identical = !identical;
    ab_first_hit_plain = !fh_plain;
    ab_first_hit_ranked = !fh_ranked;
    ab_deadline_matches_plain = !dm_plain;
    ab_deadline_matches_ranked = !dm_ranked;
    ab_rescues = !rescues;
  }
