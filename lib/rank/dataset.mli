(** Training-data harvest for the learned ranker.

    For each training shape, every micro-kernel in the compiler's set is
    run as a single-region Pattern-I program through
    {!Mikpoly_core.Compiler.simulate_observed} — on the compiler's own
    device or an explicit [hw] — and the resulting residual observations
    (collected via the {!Mikpoly_core.Compiler.set_observer} hook, the
    same channel the adaptation layer listens on) become one example per
    region: the {!Features} vector plus the log observed∕predicted
    residual. Deterministic given (compiler, hw, shapes). *)

type example = {
  ex_features : float array;
  ex_target : float;  (** log(observed ∕ predicted) region cycles *)
  ex_shape : int * int * int;  (** (M, N, K) — for per-shape centering *)
  ex_kernel : int * int * int;  (** (uM, uN, uK) — for baseline fits *)
  ex_raw : float;  (** raw Eq.-2 region prediction, cycles *)
  ex_observed : float;  (** simulator region envelope, cycles *)
}

val sample_shapes : seed:int -> count:int -> (int * int * int) list
(** Deterministic log-uniform GEMM shapes (M, N ∈ [64, 2048],
    K ∈ [64, 1024]), distinct while the draw budget lasts. *)

val harvest :
  compiler:Mikpoly_core.Compiler.t -> ?hw:Mikpoly_accel.Hardware.t ->
  (int * int * int) list -> example list
(** Temporarily installs (and on exit clears) the compiler's observer
    hook. Examples appear in (shape, kernel-rank) order. *)
