(** The multi-tenant serving workload mix used by the fleet experiment
    and bench: three tenants on distinct SLO tiers with heavy-tail
    (Pareto) prompt lengths — the shape-diverse, priority-diverse
    traffic a shared dynamic-shape serving fleet actually sees.

    Tiers are named by string so this module stays independent of
    [lib/fleet] (workloads sit below the serving stack); the fleet
    experiment maps the names onto its tier type. *)

type tenant_row = {
  mix_name : string;
  mix_tier : string;  (** "gold" | "silver" | "best-effort" *)
  mix_rate : float;  (** Poisson arrival rate, requests/second *)
  mix_share : float;  (** fraction of the trace's total request count *)
}

val rows : tenant_row list
(** Gold first; shares sum to 1. *)

val pareto_alpha : float
(** Tail index of the prompt-length distribution (heavy-tailed: finite
    mean, infinite variance at 1.1). *)

val counts : total:int -> (tenant_row * int) list
(** Split [total] requests across the rows by share
    (largest-remainder, so the counts sum exactly to [total]). *)
