module Dag = Mikpoly_graph.Dag
module Symdim = Mikpoly_graph.Symdim

type entry = {
  model : string;
  dag : Dag.t;
  bindings : Symdim.env list;
}

let c = Symdim.const

let transformer (cfg : Mikpoly_nn.Transformer.config) =
  let b = Dag.builder ~name:cfg.name in
  let seq = Symdim.sym "seq" in
  let h = cfg.hidden in
  let hd = h / cfg.heads in
  let tokens = Dag.input b ~label:"tokens" ~dims:[ seq; c h ] in
  let x0 = Dag.elemwise b ~traffic:3. ~label:"embed" ~ew:"embed" [ tokens ] in
  let layer x l =
    let lb s = Printf.sprintf "L%d.%s" l s in
    let w_qkv = Dag.weight b ~label:(lb "w_qkv") ~dims:[ h; 3 * h ] in
    let qkv = Dag.gemm b ~label:(lb "qkv") x w_qkv in
    let q = Dag.view b ~label:(lb "q") ~dims:[ seq; c hd ] qkv in
    let kt = Dag.view b ~label:(lb "kT") ~dims:[ c hd; seq ] qkv in
    let v = Dag.view b ~label:(lb "v") ~dims:[ seq; c hd ] qkv in
    let scores =
      List.init cfg.heads (fun i ->
          Dag.gemm b ~label:(lb (Printf.sprintf "h%d.scores" i)) q kt)
    in
    let softmax =
      Dag.elemwise b ~traffic:3. ~label:(lb "softmax") ~ew:"softmax" scores
    in
    let ctx =
      List.init cfg.heads (fun i ->
          Dag.gemm b ~label:(lb (Printf.sprintf "h%d.ctx" i)) softmax v)
    in
    let cat = Dag.concat b ~label:(lb "concat") ~axis:1 ctx in
    let w_proj = Dag.weight b ~label:(lb "w_proj") ~dims:[ h; h ] in
    let proj = Dag.gemm b ~label:(lb "proj") cat w_proj in
    let ln1 =
      Dag.elemwise b ~label:(lb "residual_ln1") ~ew:"add_ln" [ proj; x ]
    in
    let w_up = Dag.weight b ~label:(lb "w_up") ~dims:[ h; cfg.ffn ] in
    let up = Dag.gemm b ~label:(lb "ffn_up") ln1 w_up in
    let gelu = Dag.elemwise b ~label:(lb "gelu") ~ew:"gelu" [ up ] in
    let w_down = Dag.weight b ~label:(lb "w_down") ~dims:[ cfg.ffn; h ] in
    let down = Dag.gemm b ~label:(lb "ffn_down") gelu w_down in
    Dag.elemwise b ~label:(lb "residual_ln2") ~ew:"add_ln" [ down; ln1 ]
  in
  let rec go x l = if l = cfg.layers then x else go (layer x l) (l + 1) in
  ignore (go x0 0);
  Dag.finish b

let resnet18 () =
  let b = Dag.builder ~name:"resnet18" in
  let batch = Symdim.sym "batch" in
  let res = Symdim.sym "res" in
  let image = Dag.input b ~label:"image" ~dims:[ batch; c 3; res; res ] in
  let conv1 =
    Dag.conv b ~stride:2 ~label:"conv1" ~out_channels:64 ~kernel:7 image
  in
  let relu1 = Dag.elemwise b ~label:"conv1.relu" ~ew:"relu" [ conv1 ] in
  let p1 = Dag.pool b ~kernel:3 ~stride:2 ~pad:1 ~label:"maxpool" relu1 in
  let block x ~name ~ch ~stride ~project =
    (* The projection shortcut comes first: it only reads the block
       input, and scheduling it before conv2 keeps the residual add
       fusable into conv2's write-back (an epilogue operand must be an
       earlier node — Rewrite.fuse_epilogues refuses forward reads). *)
    let sc =
      if project then
        Dag.conv b ~stride ~pad:0 ~label:(name ^ ".down") ~out_channels:ch
          ~kernel:1 x
      else x
    in
    let c1 =
      Dag.conv b ~stride ~label:(name ^ ".conv1") ~out_channels:ch ~kernel:3 x
    in
    let r1 = Dag.elemwise b ~label:(name ^ ".relu1") ~ew:"relu" [ c1 ] in
    let c2 =
      Dag.conv b ~label:(name ^ ".conv2") ~out_channels:ch ~kernel:3 r1
    in
    let add =
      Dag.elemwise b ~traffic:1.5 ~label:(name ^ ".residual") ~ew:"add"
        [ c2; sc ]
    in
    Dag.elemwise b ~label:(name ^ ".relu2") ~ew:"relu" [ add ]
  in
  let x, _ =
    List.fold_left
      (fun (x, i) (ch, stride, project) ->
        let x = block x ~name:(Printf.sprintf "s%d.b0" i) ~ch ~stride ~project in
        let x =
          block x ~name:(Printf.sprintf "s%d.b1" i) ~ch ~stride:1
            ~project:false
        in
        (x, i + 1))
      (p1, 1)
      [ (64, 1, false); (128, 2, true); (256, 2, true); (512, 2, true) ]
  in
  let gp = Dag.global_pool b ~label:"avgpool" ~target:1 x in
  let flat = Dag.view b ~label:"flatten" ~dims:[ batch; c 512 ] gp in
  let w_fc = Dag.weight b ~label:"w_fc" ~dims:[ 512; 1000 ] in
  ignore (Dag.gemm b ~label:"fc" flat w_fc);
  Dag.finish b

let vgg11 () =
  let b = Dag.builder ~name:"vgg11" in
  let batch = Symdim.sym "batch" in
  let res = Symdim.sym "res" in
  let image = Dag.input b ~label:"image" ~dims:[ batch; c 3; res; res ] in
  let feature x ~name ~ch =
    let cv = Dag.conv b ~label:name ~out_channels:ch ~kernel:3 x in
    Dag.elemwise b ~label:(name ^ ".relu") ~ew:"relu" [ cv ]
  in
  let x, _ =
    List.fold_left
      (fun (x, i) chans ->
        let x, _ =
          List.fold_left
            (fun (x, j) ch ->
              (feature x ~name:(Printf.sprintf "conv%d_%d" i j) ~ch, j + 1))
            (x, 0) chans
        in
        (Dag.pool b ~kernel:2 ~stride:2 ~label:(Printf.sprintf "pool%d" i) x,
         i + 1))
      (image, 1)
      [ [ 64 ]; [ 128 ]; [ 256; 256 ]; [ 512; 512 ]; [ 512; 512 ] ]
  in
  let gp = Dag.global_pool b ~label:"avgpool" ~target:7 x in
  let flat = Dag.view b ~label:"flatten" ~dims:[ batch; c (512 * 7 * 7) ] gp in
  let fc x ~name ~m ~n ~relu =
    let w = Dag.weight b ~label:("w_" ^ name) ~dims:[ m; n ] in
    let g = Dag.gemm b ~label:name x w in
    if relu then Dag.elemwise b ~label:(name ^ ".relu") ~ew:"relu" [ g ] else g
  in
  let f1 = fc flat ~name:"fc1" ~m:(512 * 7 * 7) ~n:4096 ~relu:true in
  let f2 = fc f1 ~name:"fc2" ~m:4096 ~n:4096 ~relu:true in
  ignore (fc f2 ~name:"fc3" ~m:4096 ~n:1000 ~relu:false);
  Dag.finish b

let llama_decode () =
  let b = Dag.builder ~name:"llama2-13b.decode" in
  let t = Symdim.sym "tokens" in
  let kv = Symdim.sym "kv" in
  let hidden = 5120 in
  (* per-GPU TP-4 slice: 10 heads x 128, FFN slice 3456 (see Llama) *)
  let attn_slice = 1280 in
  let ffn_slice = 3456 in
  let x0 = Dag.input b ~label:"tokens" ~dims:[ c hidden; t ] in
  let layer x l =
    let lb s = Printf.sprintf "L%d.%s" l s in
    let rms = Dag.elemwise b ~traffic:4. ~label:(lb "rmsnorm") ~ew:"rmsnorm" [ x ] in
    let w_qkv = Dag.weight b ~label:(lb "w_qkv") ~dims:[ 3 * attn_slice; hidden ] in
    let qkv = Dag.gemm b ~label:(lb "qkv_proj") w_qkv rms in
    let attn_in = Dag.view b ~label:(lb "q") ~dims:[ c attn_slice; t ] qkv in
    let cache = Dag.input b ~label:(lb "kv") ~dims:[ c attn_slice; kv ] in
    let attn = Dag.scan b ~label:(lb "kv_attention") attn_in cache in
    let w_o = Dag.weight b ~label:(lb "w_o") ~dims:[ hidden; attn_slice ] in
    let o = Dag.gemm b ~label:(lb "o_proj") w_o attn in
    let ar1 = Dag.comm b ~traffic:2. ~label:(lb "allreduce_attn") ~gbps:300. o in
    let w_up = Dag.weight b ~label:(lb "w_up") ~dims:[ ffn_slice; hidden ] in
    let up = Dag.gemm b ~repeat:2 ~label:(lb "ffn_up") w_up ar1 in
    let silu = Dag.elemwise b ~label:(lb "silu") ~ew:"silu" [ up ] in
    let w_down = Dag.weight b ~label:(lb "w_down") ~dims:[ hidden; ffn_slice ] in
    let down = Dag.gemm b ~label:(lb "ffn_down") w_down silu in
    Dag.comm b ~traffic:2. ~label:(lb "allreduce_ffn") ~gbps:300. down
  in
  let rec go x l = if l = Mikpoly_nn.Llama.layers then x else go (layer x l) (l + 1) in
  ignore (go x0 0);
  Dag.finish b

let suite ~quick =
  let bert =
    {
      model = "bert-base";
      dag = transformer Mikpoly_nn.Transformer.bert_base;
      bindings =
        (if quick then [ [ ("seq", 64) ]; [ ("seq", 128) ] ]
         else [ [ ("seq", 64) ]; [ ("seq", 128) ]; [ ("seq", 256) ] ]);
    }
  in
  let resnet =
    {
      model = "resnet18";
      dag = resnet18 ();
      bindings =
        (if quick then [ [ ("batch", 2); ("res", 64) ] ]
         else [ [ ("batch", 2); ("res", 64) ]; [ ("batch", 4); ("res", 96) ] ]);
    }
  in
  let llama =
    {
      model = "llama2-13b.decode";
      dag = llama_decode ();
      bindings =
        (if quick then [ [ ("tokens", 8); ("kv", 512) ] ]
         else [ [ ("tokens", 8); ("kv", 512) ]; [ ("tokens", 16); ("kv", 1024) ] ]);
    }
  in
  if quick then [ bert; resnet; llama ]
  else
    [
      bert;
      {
        model = "distilbert";
        dag = transformer Mikpoly_nn.Transformer.distilbert;
        bindings = [ [ ("seq", 64) ]; [ ("seq", 128) ] ];
      };
      resnet;
      { model = "vgg11"; dag = vgg11 (); bindings = [ [ ("batch", 2); ("res", 64) ] ] };
      llama;
    ]
