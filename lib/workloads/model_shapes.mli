(** Exact shape inventories of the end-to-end evaluation.

    Enumerates every distinct (lowered) GEMM shape the paper's model zoo
    produces across its dynamic ranges — the concrete workload MikPoly's
    online stage faces in Figures 8, 9 and 11. Used by coverage tests and
    reports ("how many distinct shapes does serving actually compile?"). *)

val transformer_shapes :
  Mikpoly_nn.Transformer.config -> seq_lens:int list -> (int * int * int) list
(** Distinct GEMM shapes over the given sequence lengths. *)

val cnn_shapes :
  Mikpoly_nn.Cnn.config -> configs:(int * int) list -> (int * int * int) list
(** Distinct lowered shapes over (batch, resolution) configurations. *)

val llama_shapes : token_counts:int list -> (int * int * int) list
(** Distinct per-GPU Llama2-13b projection shapes over token counts. *)

val evaluation_inventory : unit -> (string * int) list
(** (model, distinct shape count) over the paper's Figure 8/9 dynamic
    ranges (150 sentence lengths; 8 batches × 10 resolutions). *)

val graph_shapes :
  Mikpoly_graph.Dag.t -> envs:Mikpoly_graph.Symdim.env list ->
  (int * int * int) list
(** Distinct lowered GEMM shapes a {!Model_graphs} DAG launches across
    the given request environments — the graph-serving counterpart of
    the per-model inventories above, used to cross-check that a graph
    reproduces its flat builder's shape set. *)
