(* Interactive (gold) traffic is steady human-driven load; batch
   (best-effort) tenants blast their backlog at the highest rate. The
   tier order is deliberately anti-correlated with burstiness — the
   fleet must protect gold from OTHER tenants' bursts, not from its
   own. *)
type tenant_row = {
  mix_name : string;
  mix_tier : string;
  mix_rate : float;
  mix_share : float;
}

let rows =
  [
    { mix_name = "interactive"; mix_tier = "gold"; mix_rate = 12.; mix_share = 0.25 };
    { mix_name = "enterprise"; mix_tier = "silver"; mix_rate = 20.; mix_share = 0.35 };
    { mix_name = "batch"; mix_tier = "best-effort"; mix_rate = 30.; mix_share = 0.40 };
  ]

let pareto_alpha = 1.1

(* Largest-remainder apportionment so the per-tenant counts always sum
   exactly to [total], whatever the shares. *)
let counts ~total =
  if total < 0 then invalid_arg "Serving_mix.counts: negative total";
  let weight = List.fold_left (fun acc r -> acc +. r.mix_share) 0. rows in
  let quota =
    List.map
      (fun r ->
        let exact = float_of_int total *. r.mix_share /. weight in
        (r, int_of_float exact, exact -. Float.of_int (int_of_float exact)))
      rows
  in
  let base = List.fold_left (fun acc (_, n, _) -> acc + n) 0 quota in
  let rest = total - base in
  let by_remainder =
    List.mapi (fun i (r, n, frac) -> (i, r, n, frac)) quota
    |> List.sort (fun (i1, _, _, f1) (i2, _, _, f2) ->
           match compare f2 f1 with 0 -> compare i1 i2 | c -> c)
  in
  let bumped =
    List.mapi
      (fun rank (i, r, n, _) -> (i, r, if rank < rest then n + 1 else n))
      by_remainder
  in
  List.sort (fun (i1, _, _) (i2, _, _) -> compare i1 i2) bumped
  |> List.map (fun (_, r, n) -> (r, n))
