open Mikpoly_nn

let distinct shapes = List.sort_uniq compare shapes

let transformer_shapes cfg ~seq_lens =
  distinct
    (List.concat_map
       (fun seq_len -> Op.gemm_shapes (Transformer.graph cfg ~seq_len))
       seq_lens)

let cnn_shapes (cfg : Cnn.config) ~configs =
  distinct
    (List.concat_map
       (fun (batch, resolution) ->
         if resolution < Cnn.min_resolution cfg then []
         else Op.gemm_shapes (cfg.build ~batch ~resolution))
       configs)

let llama_shapes ~token_counts =
  distinct
    (List.concat_map
       (fun tokens ->
         List.map (fun g -> Llama.gemm_shape g ~tokens) Llama.layer_gemms)
       token_counts)

let evaluation_inventory () =
  let rng = Mikpoly_util.Prng.create 0x5E9 in
  let seq_lens = List.init 150 (fun _ -> Mikpoly_util.Prng.int_in rng 5 500) in
  let cnn_configs =
    List.concat_map
      (fun b -> List.init 10 (fun i -> (1 lsl b, 64 * (i + 1))))
      (List.init 8 Fun.id)
  in
  List.map
    (fun (cfg : Transformer.config) ->
      (cfg.name, List.length (transformer_shapes cfg ~seq_lens)))
    Transformer.all
  @ List.map
      (fun (cfg : Cnn.config) ->
        (cfg.name, List.length (cnn_shapes cfg ~configs:cnn_configs)))
      Cnn.all
  @ [
      ( "llama2-13b",
        List.length (llama_shapes ~token_counts:(List.init 13 (fun i -> 1 lsl i))) );
    ]

let graph_shapes dag ~envs =
  distinct
    (List.concat_map
       (fun env ->
         Mikpoly_graph.Infer.distinct_shapes
           (Mikpoly_graph.Infer.bind_exn dag ~env))
       envs)
