(** The evaluation models as typed operator DAGs.

    Where {!Mikpoly_nn.Transformer} and friends enumerate a flat
    operator list per concrete shape, these builders produce one
    symbolic graph per model family: dynamic dimensions ([seq], [batch],
    [res], [tokens], [kv]) stay {!Mikpoly_graph.Symdim.dim}s until a
    request binds them, so the whole dynamic range shares a single
    graph, rewrite result and memory plan. Per-head attention appears as
    sibling GEMMs over shared views of the QKV value — exactly the
    pattern {!Mikpoly_graph.Rewrite.merge_siblings} collapses into one
    batched launch. *)

type entry = {
  model : string;
  dag : Mikpoly_graph.Dag.t;
  bindings : Mikpoly_graph.Symdim.env list;
      (** request environments to evaluate the model at *)
}

val transformer : Mikpoly_nn.Transformer.config -> Mikpoly_graph.Dag.t
(** Encoder pass at batch 1, symbolic in ["seq"]: embed, then per layer
    QKV, per-head score/context GEMMs, softmax, concat, projection +
    residual, FFN with GELU and a second residual. *)

val resnet18 : unit -> Mikpoly_graph.Dag.t
(** Symbolic in ["batch"] and ["res"] (input resolution, which must
    survive five stride-2 reductions — 64 is the smallest sensible
    binding). *)

val vgg11 : unit -> Mikpoly_graph.Dag.t
(** Symbolic in ["batch"] and ["res"]. *)

val llama_decode : unit -> Mikpoly_graph.Dag.t
(** One Llama2-13b TP-4 decoding step, symbolic in ["tokens"] (batch in
    flight) and ["kv"] (cache length): per layer RMS-norm, the four
    Table-8 projections, KV-cache scan attention and two all-reduces. *)

val suite : quick:bool -> entry list
(** The graph-serving evaluation set with per-model request bindings;
    [quick] keeps one transformer, one CNN and the Llama decode step. *)
