(** Multi-tenant continuous-batching fleet over the {!Mikpoly_serve}
    scheduler primitives.

    One fleet-wide weighted-fair queue ({!Wfq}) feeds N replica slots
    running the same event-clock simulation contract as
    {!Mikpoly_serve.Scheduler.run}: bit-identical outcomes for a given
    (config, engine, trace, fault plan), independent of [--jobs] and of
    wall-clock time. On top of plain WFQ dispatch the fleet adds three
    compile-aware planes:

    - {b Shape-aware coalescing} ([coalesce]): each admission pulls a
      group of requests sharing one bucketed shape signature, so the
      whole group costs at most one compile stall; signatures are sticky
      to the replica that last served them (owner affinity) with a
      [steal_age] bound so no request waits forever for a busy owner.
    - {b Learned warm store} ([warm]): a decayed per-tenant histogram
      ({!Learner}) ranks hot signatures; a serialized background worker
      precompiles their step shapes into a fleet-shared cache whose
      entries carry a ready-at time. A replica missing its own cache
      takes a warm program stall-free once the background compile has
      finished; an on-path compile publishes fleet-wide so each shape is
      compiled at most once across the fleet.
    - {b Autoscaling} ([autoscale]): periodic {!Autoscaler} ticks over
      queue depth, running SLO attainment and stall ratio spawn or
      retire replicas with hysteresis; crashed replicas count against
      capacity and never read as scale-down signals. *)

type warm_config = {
  warm_top_k : int;  (** signatures refreshed per interval *)
  warm_interval : float;  (** seconds between learner-driven refreshes *)
  warm_half_life : float;  (** decay half-life of the shape histogram *)
  warm_capacity : int;  (** warm-store LRU capacity (shapes) *)
}

val default_warm : warm_config

type config = {
  replicas : int;  (** initial fleet size (clamped to autoscale bounds) *)
  batcher : Mikpoly_serve.Batcher.policy;
  bucketing : Mikpoly_serve.Bucketing.policy;
  cache_capacity : int;  (** per-replica program-cache LRU capacity *)
  coalesce : bool;  (** group admissions by shape signature *)
  steal_age : float;
      (** seconds after which a request may be served by a non-owner
          replica — the starvation bound on owner affinity *)
  warm : warm_config option;  (** [None] disables the warm store *)
  autoscale : Autoscaler.config option;  (** [None] pins the fleet size *)
  ratelimit : Ratelimit.config option;
      (** base (weight-1) token bucket per tenant, scaled by tier weight
          via {!Ratelimit.for_tier}; shedding happens at arrival, before
          the WFQ and the warm-store learner. [None] admits everything. *)
}

val validate : config -> unit
(** Raises [Invalid_argument] on nonsensical settings. *)

type tier_metrics = {
  tm_tier : Tenant.tier;
  tm_requests : int;  (** trace requests from tenants of this tier *)
  tm_completed : int;
  tm_slo_met : int;
  tm_attainment : float;  (** slo_met / requests (dropped count against) *)
}

type outcome = {
  completed : Mikpoly_serve.Scheduler.completed list;  (** finish order *)
  dropped : Mikpoly_serve.Request.t list;  (** shed by the SLO batcher *)
  rate_limited : Mikpoly_serve.Request.t list;
      (** refused at the door by the per-tenant token bucket *)
  steps : int;
  makespan : float;
  compile_stall_seconds : float;  (** on-path (request-visible) only *)
  actual_tokens : int;
  padded_tokens : int;
  cache : Mikpoly_serve.Shape_cache.stats list;
      (** live replica caches in slot order, then retired/crashed ones *)
  warm_stats : Mikpoly_serve.Shape_cache.stats option;
  warm_hits : int;  (** replica misses served stall-free by the warm store *)
  warm_compiles : int;  (** background compiles off the critical path *)
  warm_background_seconds : float;
  coalesced_groups : int;  (** admissions of >1 request, one signature *)
  queue_depth_sum : int;
  queue_samples : int;
  crashes : int;
  injected_faults : int;
  requeues : int;  (** in-flight requests bounced back to their lanes *)
  scale_ups : int;
  scale_downs : int;
  peak_replicas : int;
  replica_seconds : float;  (** Σ per-replica active time — the cost side *)
  lanes : Wfq.lane_stats list;
  tiers : tier_metrics list;
}

val slo_met : Mikpoly_serve.Scheduler.completed -> bool
(** Both the TTFT and the end-to-end budget were met. *)

val run :
  ?faults:Mikpoly_fault.Plan.t ->
  config ->
  Mikpoly_serve.Scheduler.engine ->
  Tenant.tagged list ->
  outcome
(** Serve a tagged multi-tenant trace to completion. Deterministic:
    event ties break crash < arrival < warm-refresh < autoscale-tick <
    replica step, then lowest replica index. *)

val to_scheduler_outcome : outcome -> Mikpoly_serve.Scheduler.outcome
(** Project onto the single-tenant outcome record so the
    {!Mikpoly_serve.Metrics} report pipeline applies unchanged:
    rate-limited requests surface as rejections (reason
    ["rate-limited"]); fields the fleet does not model — retry budgets,
    timeouts — are zero/empty. *)
