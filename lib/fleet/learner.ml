(* Decayed histogram of observed shape signatures, per tenant. Mass
   decays exponentially with the event clock (half-life semantics), so
   the top-K reflects the *live* shape distribution: a tenant that
   stopped sending 4k-token prompts an hour ago stops pinning that
   bucket's programs in the warm store. *)

type cell = {
  mutable mass : float;
  mutable last : float;
}

type t = {
  half_life : float;
  cells : (int * int, cell) Hashtbl.t;  (* (tenant_id, signature) *)
}

let create ?(half_life = 1.0) () =
  if half_life <= 0. then invalid_arg "Learner.create: half_life must be > 0";
  { half_life; cells = Hashtbl.create 64 }

let decay t cell ~now =
  if now > cell.last then begin
    cell.mass <- cell.mass *. (0.5 ** ((now -. cell.last) /. t.half_life));
    cell.last <- now
  end

let observe t ~now ~tenant ~signature ~weight =
  if weight < 0. then invalid_arg "Learner.observe: negative weight";
  let key = (tenant, signature) in
  let cell =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
      let c = { mass = 0.; last = now } in
      Hashtbl.replace t.cells key c;
      c
  in
  decay t cell ~now;
  cell.mass <- cell.mass +. weight

(* Merge across tenants: decayed mass summed per signature, ranked
   descending with ties to the smaller signature — hash order never
   leaks into the ranking. *)
let top_k t ~now ~k =
  if k < 0 then invalid_arg "Learner.top_k: negative k";
  let merged = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (_, signature) cell ->
      decay t cell ~now;
      let prev =
        Option.value (Hashtbl.find_opt merged signature) ~default:0.
      in
      Hashtbl.replace merged signature (prev +. cell.mass))
    t.cells;
  Hashtbl.fold (fun signature mass acc -> (signature, mass) :: acc) merged []
  |> List.sort (fun (s1, m1) (s2, m2) ->
         match compare m2 m1 with 0 -> compare s1 s2 | c -> c)
  |> List.filteri (fun i _ -> i < k)

(* Decayed mass of one signature summed across tenants — the admission
   weight the warm store's mass-aware cache consults. Pure with respect
   to ranking: it decays cells exactly like [top_k] does, so reading a
   mass never perturbs subsequent rankings. *)
let mass t ~now ~signature =
  Hashtbl.fold
    (fun (_, s) cell acc ->
      if s = signature then begin
        decay t cell ~now;
        acc +. cell.mass
      end
      else acc)
    t.cells 0.

let signatures t =
  Hashtbl.fold (fun (_, s) _ acc -> s :: acc) t.cells []
  |> List.sort_uniq compare
