(** Weighted fair queueing across tenants (start-time fair queueing).

    One FIFO lane per tenant; a request reaching the head of its lane
    is stamped with a frozen virtual finish tag
    [max(lane_finish, vtime) + cost/weight] where cost is the request's
    token work and weight its tier's ({!Tenant.weight}). Selection
    takes the eligible lane head with the smallest tag, ties to the
    lowest tenant id; virtual time advances to each grant's start tag,
    so an idle tenant re-enters at the current virtual time rather than
    cashing in unused credit, while a waiting head keeps its tag and
    cannot be outrun forever by a backlogged heavier lane.

    Invariants:
    - per-tenant FIFO: a tenant's requests are granted in push order;
    - weighted shares: over any interval where a set of tenants stays
      backlogged, each receives granted cost proportional to its weight,
      within one maximal request of exact — so a weight-w tenant facing
      total weight W is never starved below w/W of service;
    - determinism: identical push/take sequences produce identical
      grants (ties never consult hash order). *)

type t

type lane_stats = {
  s_tenant : Tenant.t;
  s_queued : int;  (** requests still waiting in the lane *)
  s_grants : int;  (** requests granted so far *)
  s_cost : float;  (** token cost granted so far *)
}

val create : unit -> t

val push : t -> Tenant.tagged -> unit
(** Enqueue at the tail of the request's tenant lane. *)

val push_front : t -> Tenant.tagged -> unit
(** Re-queue at the head of the tenant lane without charging virtual
    time — for work bounced back by a replica crash. *)

val length : t -> int

val is_empty : t -> bool

val to_list : t -> Tenant.tagged list
(** Every queued request, in deterministic (tenant id, FIFO) order —
    for event-time computation, not consumption. *)

val take :
  t -> max:int -> eligible:(Tenant.tagged -> bool) ->
  ?first:(Tenant.tagged -> bool) ->
  ?group:(Tenant.tagged -> Tenant.tagged -> bool) -> unit ->
  Tenant.tagged list
(** Grant up to [max] requests in WFQ order, charging each to its
    tenant's virtual time. Only requests satisfying [eligible] are
    considered. The first grant must additionally satisfy [first] (the
    coalescing affinity filter); if no head does, nothing is granted.
    Subsequent grants prefer requests matching [group leader r] — the
    coalescing legality rule: a request may jump ahead of WFQ order
    only into a group whose shape signature matches its own — and fall
    back to plain WFQ order when none match, so the offer stays
    work-conserving. *)

val stats : t -> lane_stats list
(** Per-lane totals in tenant-id order. *)
