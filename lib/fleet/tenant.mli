(** Tenants and multi-tenant request traces.

    A fleet serves many tenants, each on an SLO tier that buys a
    weighted share of admission ({!Wfq}). Requests stay plain
    {!Mikpoly_serve.Request.t} values — the tenant rides alongside in a
    {!tagged} pair, so everything in [lib/serve] (batchers, bucketing,
    metrics) applies unchanged. *)

type tier =
  | Gold  (** weight 4 — paid, latency-sensitive traffic *)
  | Silver  (** weight 2 *)
  | Best_effort  (** weight 1 — batch/background traffic *)

val tier_name : tier -> string

val weight : tier -> int
(** Admission weight: a backlogged tenant receives service in proportion
    to its tier weight (4 : 2 : 1). *)

val tiers : tier list
(** All tiers, gold first. *)

type t = {
  tenant_id : int;  (** unique, non-negative *)
  tenant_name : string;
  tier : tier;
}

type tagged = {
  req : Mikpoly_serve.Request.t;
  tenant : t;
}

val compare_by_id : t -> t -> int

type spec = {
  tenant : t;
  rate : float;  (** Poisson arrival rate, requests/second *)
  count : int;
}

val requests : tagged list -> Mikpoly_serve.Request.t list
(** Strip the tenants — the trace a tenant-blind baseline scheduler
    sees. *)

type profile = {
  p_ttft : float option;  (** TTFT budget override for the tier *)
  p_tpot : float option;
  p_max_prompt : int option;
  p_max_output : int option;
  p_length_dist : Mikpoly_serve.Request.length_dist option;
}
(** Per-tier workload shape: interactive tiers carry tight first-token
    budgets and chat-sized prompts, batch tiers long loose-deadline
    jobs. [None] fields fall back to the trace-wide arguments. *)

val no_profile : profile

val trace :
  ?length_dist:Mikpoly_serve.Request.length_dist ->
  ?ttft_budget:float -> ?tpot_budget:float -> ?profiles:(tier -> profile) ->
  seed:int -> max_prompt:int ->
  max_output:int -> spec list -> unit -> tagged list
(** Merge per-tenant Poisson streams into one arrival-ordered trace.
    Each tenant draws from its own seed-derived PRNG stream (resizing
    one tenant never perturbs another's arrivals) and request ids are
    reassigned to be unique fleet-wide. Pass
    [~length_dist:(Pareto { alpha = 1.1 })] for the heavy-tail prompt
    mix of real multi-tenant traffic, and [profiles] to give each tier
    its own SLO budgets and length caps ({!profile}). Raises
    [Invalid_argument] on duplicate or negative tenant ids. *)

val lookup : tagged list -> int -> t
(** Tenant of a request id from the trace; raises [Invalid_argument] on
    an unknown id. *)
