module Sch = Mikpoly_serve.Scheduler
module Request = Mikpoly_serve.Request
module Batcher = Mikpoly_serve.Batcher
module Bucketing = Mikpoly_serve.Bucketing
module Shape_cache = Mikpoly_serve.Shape_cache
module Plan = Mikpoly_fault.Plan
module Tm = Mikpoly_telemetry

(* Always-on fleet metrics, alongside the serve.* family. The replica
   gauge uses the lock-free relative adjustment so concurrent fleets in
   one process never lose a +1/-1. *)
let m_steps = Tm.Metrics.counter "fleet.steps"

let m_completed = Tm.Metrics.counter "fleet.completed"

let m_dropped = Tm.Metrics.counter "fleet.dropped"

let m_warm_hits = Tm.Metrics.counter "fleet.warm.hits"

let m_warm_compiles = Tm.Metrics.counter "fleet.warm.compiles"

let m_scale_ups = Tm.Metrics.counter "fleet.scale.ups"

let m_scale_downs = Tm.Metrics.counter "fleet.scale.downs"

let m_crashes = Tm.Metrics.counter "fleet.crashes"

let g_replicas = Tm.Metrics.gauge "fleet.replicas"

type warm_config = {
  warm_top_k : int;
  warm_interval : float;
  warm_half_life : float;
  warm_capacity : int;
}

let default_warm =
  {
    warm_top_k = 8;
    warm_interval = 0.25;
    warm_half_life = 1.0;
    warm_capacity = 4096;
  }

type config = {
  replicas : int;
  batcher : Batcher.policy;
  bucketing : Bucketing.policy;
  cache_capacity : int;
  coalesce : bool;
  steal_age : float;
  warm : warm_config option;
  autoscale : Autoscaler.config option;
  ratelimit : Ratelimit.config option;
}

let validate config =
  if config.replicas < 1 then invalid_arg "Fleet: replicas must be >= 1";
  (match config.ratelimit with
  | Some rl -> Ratelimit.validate rl
  | None -> ());
  if config.cache_capacity < 0 then
    invalid_arg "Fleet: negative cache capacity";
  if config.steal_age < 0. then invalid_arg "Fleet: steal_age must be >= 0";
  (match config.warm with
  | Some w ->
    if w.warm_top_k < 0 then invalid_arg "Fleet: warm_top_k must be >= 0";
    if w.warm_interval <= 0. then
      invalid_arg "Fleet: warm_interval must be > 0";
    if w.warm_half_life <= 0. then
      invalid_arg "Fleet: warm_half_life must be > 0";
    if w.warm_capacity < 0 then
      invalid_arg "Fleet: warm_capacity must be >= 0"
  | None -> ());
  match config.autoscale with
  | Some a -> Autoscaler.validate a
  | None -> ()

type tier_metrics = {
  tm_tier : Tenant.tier;
  tm_requests : int;
  tm_completed : int;
  tm_slo_met : int;
  tm_attainment : float;
}

type outcome = {
  completed : Sch.completed list;
  dropped : Request.t list;
  rate_limited : Request.t list;
  steps : int;
  makespan : float;
  compile_stall_seconds : float;
  actual_tokens : int;
  padded_tokens : int;
  cache : Shape_cache.stats list;
  warm_stats : Shape_cache.stats option;
  warm_hits : int;
  warm_compiles : int;
  warm_background_seconds : float;
  coalesced_groups : int;
  queue_depth_sum : int;
  queue_samples : int;
  crashes : int;
  injected_faults : int;
  requeues : int;
  scale_ups : int;
  scale_downs : int;
  peak_replicas : int;
  replica_seconds : float;
  lanes : Wfq.lane_stats list;
  tiers : tier_metrics list;
}

let slo_met (c : Sch.completed) =
  let r = c.Sch.request in
  c.Sch.first_token -. r.Request.arrival <= r.Request.slo.Request.ttft
  && c.Sch.finish -. r.Request.arrival <= r.Request.slo.Request.e2e

let to_scheduler_outcome (o : outcome) : Sch.outcome =
  {
    Sch.completed = o.completed;
    dropped = o.dropped;
    rejected = List.map (fun r -> (r, "rate-limited")) o.rate_limited;
    timed_out = [];
    failed = [];
    steps = o.steps;
    makespan = o.makespan;
    compile_stall_seconds = o.compile_stall_seconds;
    adapt_stall_seconds = 0.;
    actual_tokens = o.actual_tokens;
    padded_tokens = o.padded_tokens;
    cache = o.cache;
    queue_depth_sum = o.queue_depth_sum;
    queue_samples = o.queue_samples;
    retries = o.requeues;
    crashes = o.crashes;
    injected_faults = o.injected_faults;
  }

type active = {
  a_tg : Tenant.tagged;
  mutable a_remaining : int;
  mutable a_kv : int;
  mutable a_prefill : int;
  mutable a_first : float;
}

type slot = {
  sl_idx : int;
  mutable sl_active : bool;
  mutable sl_clock : float;
  mutable sl_act : active list;
  mutable sl_cache : unit Shape_cache.t;
  mutable sl_step : int;  (* monotone per slot: the fault-draw key *)
  mutable sl_down_until : float;
  mutable sl_spawned : float;
}

(* Event kinds in tie priority order: a crash preempts the arrival it
   races, arrivals land before the background planes run, and the
   replica step goes last so it sees the freshest queue — all fixed, so
   the interleaving is deterministic. *)
let prio_crash = 0

let prio_arrival = 1

let prio_refresh = 2

let prio_scale = 3

let prio_step = 4

let run ?(faults = Plan.none) config engine trace =
  validate config;
  let max_slots =
    match config.autoscale with
    | Some a -> max config.replicas a.Autoscaler.max_replicas
    | None -> config.replicas
  in
  let init_active =
    match config.autoscale with
    | Some a ->
      max a.Autoscaler.min_replicas
        (min config.replicas a.Autoscaler.max_replicas)
    | None -> config.replicas
  in
  let slots =
    Array.init max_slots (fun i ->
        {
          sl_idx = i;
          sl_active = i < init_active;
          sl_clock = 0.;
          sl_act = [];
          sl_cache = Shape_cache.create ~capacity:config.cache_capacity;
          sl_step = 0;
          sl_down_until = 0.;
          sl_spawned = 0.;
        })
  in
  Tm.Metrics.gauge_add g_replicas (float_of_int init_active);
  let q = Wfq.create () in
  let learner =
    match config.warm with
    | Some w -> Some (Learner.create ~half_life:w.warm_half_life ())
    | None -> None
  in
  (* Warm-store admission is mass-aware, not LRU: a warm entry's weight
     is its bucket's decayed learner mass at the moment an admission
     decision is made, so a scan of cold buckets churns among the cold
     entries and can never evict a heavy-tail tenant's hot bucket.
     [warm_sig] remembers which bucket produced each warm shape (filled
     wherever [step_shapes] expands a bucket) and [warm_now] tracks the
     event clock the decay is evaluated at. *)
  let warm_sig : (Shape_cache.key, int) Hashtbl.t = Hashtbl.create 64 in
  let warm_now = ref 0. in
  let warm_store =
    match (config.warm, learner) with
    | Some w, Some l ->
      let weight shape =
        match Hashtbl.find_opt warm_sig shape with
        | Some s -> Learner.mass l ~now:!warm_now ~signature:s
        | None -> 0.
      in
      Some (Shape_cache.create_weighted ~weight ~capacity:w.warm_capacity)
    | _ -> None
  in
  let register_warm_shapes b shapes =
    List.iter
      (fun ((shape : Shape_cache.key), _) -> Hashtbl.replace warm_sig shape b)
      shapes;
    shapes
  in
  (* Coalescing affinity: which slot last led a group for a signature.
     A signature stays sticky to its owner until the owner retires or a
     head request ages past [steal_age] — then the stealing slot claims
     it. *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let pending =
    ref
      (List.stable_sort
         (fun (a : Tenant.tagged) (b : Tenant.tagged) ->
           Request.compare_arrival a.Tenant.req b.Tenant.req)
         trace)
  in
  let completed = ref [] in
  let dropped = ref [] in
  let rate_limited = ref [] in
  let limiter =
    match config.ratelimit with
    | Some base ->
      Some
        (Ratelimit.create
           ~rate_for:(fun t -> Ratelimit.for_tier ~base t.Tenant.tier)
           ())
    | None -> None
  in
  let steps = ref 0 in
  let stall_total = ref 0. in
  let actual_tokens = ref 0 in
  let padded_tokens = ref 0 in
  let qsum = ref 0 in
  let qsamples = ref 0 in
  let makespan = ref 0. in
  let crash_count = ref 0 in
  let injected = ref 0 in
  let requeues = ref 0 in
  let warm_hits = ref 0 in
  let warm_compiles = ref 0 in
  let warm_bg_clock = ref 0. in
  let warm_bg_seconds = ref 0. in
  let coalesced_groups = ref 0 in
  let scale_ups = ref 0 in
  let scale_downs = ref 0 in
  let retired_caches = ref [] in
  let replica_acc = ref 0. in
  let peak = ref init_active in
  let met_count = ref 0 in
  let resolved = ref 0 in
  let crashes_left = ref faults.Plan.crashes in
  let next_refresh =
    ref (match config.warm with Some w -> w.warm_interval | None -> infinity)
  in
  let next_tick =
    ref
      (match config.autoscale with
      | Some a -> a.Autoscaler.interval
      | None -> infinity)
  in
  let last_change = ref 0. in
  let signature tg =
    Bucketing.bucket config.bucketing tg.Tenant.req.Request.prompt_len
  in
  let owner_of s =
    match Hashtbl.find_opt owner s with
    | Some i when slots.(i).sl_active -> Some i
    | _ -> None
  in
  (* Policy-aging instant for a queued request, mirroring the
     [Batcher] predicates over the fleet-wide queue: a Timeout batcher
     holds a request back for its window unless the shared queue alone
     can fill the batch. *)
  let aged_time in_flight tg =
    let arrival = tg.Tenant.req.Request.arrival in
    match config.batcher with
    | Batcher.Greedy _ | Batcher.Slo_aware _ -> arrival
    | Batcher.Timeout { window; max_batch } ->
      if Wfq.length q + in_flight >= max_batch then arrival
      else arrival +. window
  in
  (* Earliest instant slot [r] may take this request as a group leader.
     Affinity never un-work-conserves the fleet: a busy or down owner is
     stolen from immediately (its cache locality is moot — it cannot
     serve now, and the warm store shares programs anyway); only an
     idle, live owner — which is about to take the request itself — is
     deferred to, and at most until the request ages past [steal_age].
     Owner state is read at evaluation time; the event loop recomputes
     slot wake-ups every iteration, so the answer is always current. *)
  let affinity_time r in_flight tg =
    let aged = aged_time in_flight tg in
    if not config.coalesce then aged
    else
      match owner_of (signature tg) with
      | None -> aged
      | Some i when i = r.sl_idx -> aged
      | Some i ->
        let o = slots.(i) in
        if o.sl_act <> [] || o.sl_down_until > aged then aged
        else Float.max aged (tg.Tenant.req.Request.arrival +. config.steal_age)
  in
  let slot_next_time r =
    if not r.sl_active then None
    else
      let base = Float.max r.sl_clock r.sl_down_until in
      if r.sl_act <> [] then Some base
      else if Wfq.is_empty q then None
      else begin
        let earliest =
          List.fold_left
            (fun acc tg -> Float.min acc (affinity_time r 0 tg))
            infinity (Wfq.to_list q)
        in
        Some (Float.max base earliest)
      end
  in
  let active_slots () =
    Array.to_list slots |> List.filter (fun r -> r.sl_active)
  in
  let work_remains () =
    !pending <> []
    || (not (Wfq.is_empty q))
    || Array.exists (fun r -> r.sl_active && r.sl_act <> []) slots
  in
  let resolve_drop (req : Request.t) =
    dropped := !dropped @ [ req ];
    incr resolved;
    Tm.Metrics.incr m_dropped
  in
  let do_crash target ~now =
    match active_slots () with
    | [] -> ()
    | actives ->
      let r = List.nth actives (target mod List.length actives) in
      incr crash_count;
      incr injected;
      Tm.Metrics.incr m_crashes;
      (* In-flight work bounces back to the front of its tenants' lanes
         uncharged — progress (tokens, KV) is lost with the process, but
         the requests are not. *)
      requeues := !requeues + List.length r.sl_act;
      List.iter
        (fun a -> Wfq.push_front q a.a_tg)
        (List.rev r.sl_act);
      r.sl_act <- [];
      retired_caches := Shape_cache.stats r.sl_cache :: !retired_caches;
      r.sl_cache <- Shape_cache.create ~capacity:config.cache_capacity;
      r.sl_down_until <- now +. faults.Plan.restart_delay;
      r.sl_clock <- Float.max r.sl_clock r.sl_down_until;
      makespan := Float.max !makespan r.sl_down_until
  in
  let do_refresh w ~now =
    match (learner, warm_store) with
    | Some l, Some ws ->
      warm_now := now;
      let top = Learner.top_k l ~now ~k:w.warm_top_k in
      (* Batch prewarm (wall clock only): every shape this refresh will
         compile goes through one coarse batched search, so the modeled
         [compile_seconds] lookups below are memo hits. The simulated
         event-clock math is unchanged — the background worker still
         charges each shape's modeled cost serially on its own clock. *)
      let missing =
        List.concat_map
          (fun (signature, _) ->
            List.filter_map
              (fun (shape, _) ->
                if Shape_cache.mem ws shape then None else Some shape)
              (register_warm_shapes signature
                 (engine.Sch.step_shapes ~tokens:signature)))
          top
      in
      if missing <> [] then
        ignore (engine.Sch.precompile_batch ~jobs:0 missing);
      List.iter
        (fun (signature, _) ->
          List.iter
            (fun (shape, _) ->
              if not (Shape_cache.mem ws shape) then begin
                (* One background worker compiles serially, off every
                   replica's critical path; the program only becomes
                   warm once its compile finishes on that clock. *)
                let c = engine.Sch.compile_seconds shape in
                warm_bg_clock := Float.max !warm_bg_clock now +. c;
                warm_bg_seconds := !warm_bg_seconds +. c;
                Shape_cache.add ws shape !warm_bg_clock;
                incr warm_compiles;
                Tm.Metrics.incr m_warm_compiles
              end)
            (register_warm_shapes signature
               (engine.Sch.step_shapes ~tokens:signature)))
        top
    | _ -> ()
  in
  let spawn ~now =
    let rec find i =
      if i >= max_slots then None
      else if not slots.(i).sl_active then Some slots.(i)
      else find (i + 1)
    in
    match find 0 with
    | None -> false
    | Some r ->
      r.sl_active <- true;
      r.sl_spawned <- now;
      r.sl_clock <- now;
      r.sl_down_until <- 0.;
      r.sl_cache <- Shape_cache.create ~capacity:config.cache_capacity;
      incr scale_ups;
      Tm.Metrics.incr m_scale_ups;
      Tm.Metrics.gauge_add g_replicas 1.;
      peak := max !peak (List.length (active_slots ()));
      true
  in
  let retire ~now =
    (* Retire the youngest idle, healthy replica; if every replica is
       busy or down, hold — never kill in-flight work for efficiency. *)
    let candidates =
      List.filter
        (fun r -> r.sl_act = [] && r.sl_down_until <= now)
        (active_slots ())
    in
    match List.rev candidates with
    | [] -> false
    | r :: _ ->
      r.sl_active <- false;
      replica_acc := !replica_acc +. (now -. r.sl_spawned);
      retired_caches := Shape_cache.stats r.sl_cache :: !retired_caches;
      r.sl_cache <- Shape_cache.create ~capacity:config.cache_capacity;
      incr scale_downs;
      Tm.Metrics.incr m_scale_downs;
      Tm.Metrics.gauge_add g_replicas (-1.);
      true
  in
  let do_tick a ~now =
    let live, down =
      List.partition (fun r -> r.sl_down_until <= now) (active_slots ())
    in
    let n_live = max 1 (List.length live) in
    let signal =
      {
        Autoscaler.queue_depth =
          float_of_int (Wfq.length q) /. float_of_int n_live;
        slo_attainment =
          (if !resolved = 0 then 1.
           else float_of_int !met_count /. float_of_int !resolved);
        stall_ratio =
          (if now <= 0. then 0.
           else !stall_total /. (now *. float_of_int n_live));
        live_replicas = List.length live;
        down_replicas = List.length down;
      }
    in
    match Autoscaler.decide a ~last_change:!last_change ~now signal with
    | Autoscaler.Hold -> ()
    | Autoscaler.Scale_up -> if spawn ~now then last_change := now
    | Autoscaler.Scale_down -> if retire ~now then last_change := now
  in
  let do_step r ~now =
    (* Admission: pull an offer from the fleet queue in WFQ order (the
       first grant is affinity-restricted when coalescing), then let the
       Batcher policy rule on it. By construction the offer is already
       policy-eligible, so the batcher admits or sheds — a deferral
       would only mean the fleet-level aging predicate and the batcher
       disagreed, and then the request simply returns to its lane. *)
    let in_flight = List.length r.sl_act in
    let cap = Batcher.max_batch config.batcher - in_flight in
    let offer =
      if cap <= 0 || Wfq.is_empty q then []
      else
        Wfq.take q ~max:cap
          ~eligible:(fun tg -> aged_time in_flight tg <= now)
          ~first:(fun tg -> affinity_time r in_flight tg <= now)
          ~group:(fun leader tg ->
            (not config.coalesce) || signature leader = signature tg)
          ()
    in
    let tagged_of =
      let table = Hashtbl.create 8 in
      List.iter
        (fun tg -> Hashtbl.replace table tg.Tenant.req.Request.id tg)
        offer;
      fun (req : Request.t) -> Hashtbl.find table req.Request.id
    in
    let d =
      Batcher.admit config.batcher ~now ~in_flight
        ~waiting:(List.map (fun tg -> tg.Tenant.req) offer)
    in
    List.iter
      (fun req -> Wfq.push_front q (tagged_of req))
      (List.rev d.Batcher.deferred);
    List.iter resolve_drop d.Batcher.dropped;
    (match offer with
    | leader :: _ when config.coalesce ->
      let s = signature leader in
      Hashtbl.replace owner s r.sl_idx;
      if
        List.length offer > 1
        && List.for_all (fun tg -> signature tg = s) offer
      then incr coalesced_groups
    | _ -> ());
    r.sl_act <-
      r.sl_act
      @ List.map
          (fun (req : Request.t) ->
            let tg = tagged_of req in
            {
              a_tg = tg;
              a_remaining = req.Request.output_len;
              a_kv = 0;
              a_prefill = req.Request.prompt_len;
              a_first = nan;
            })
          d.Batcher.admitted;
    if r.sl_act = [] then
      (* SLO shedding may have emptied the offer; otherwise nudge the
         clock so an admit-nothing policy step cannot livelock. *)
      r.sl_clock <- (if d.Batcher.dropped <> [] then now else now +. 1e-6)
    else begin
      incr qsamples;
      qsum := !qsum + Wfq.length q;
      let tokens =
        List.fold_left
          (fun acc a -> acc + if a.a_prefill > 0 then a.a_prefill else 1)
          0 r.sl_act
      in
      let kv_tokens = List.fold_left (fun acc a -> acc + a.a_kv) 0 r.sl_act in
      (* Coalesced batches pad each member to its own bucket, so a group
         of k same-signature prefills runs the k x bucket polymerized
         program exactly — the step shape repeats whenever the same
         group composition recurs, instead of chasing the bucket of an
         arbitrary mixed sum. Uncoalesced admission keeps the
         scheduler's bucket-of-the-sum model. *)
      let btokens =
        if config.coalesce then
          List.fold_left
            (fun acc a ->
              acc
              + if a.a_prefill > 0 then
                  Bucketing.bucket config.bucketing a.a_prefill
                else 1)
            0 r.sl_act
        else Bucketing.bucket config.bucketing tokens
      in
      actual_tokens := !actual_tokens + tokens;
      padded_tokens := !padded_tokens + btokens;
      (* Program lookup ladder: replica cache, then the fleet-shared
         warm store (stall-free if its background compile finished by
         [now]), then an on-path compile that stalls this step — and
         publishes the program fleet-wide, so no other replica ever
         compiles this shape again. *)
      let stall = ref 0. in
      (* Coalesced batches launch the *bucket's* polymerized program per
         member — k same-signature prefills reuse one compiled program
         whatever k is (the runtime glues k micro-kernel instances), so
         the compile key is the bucket, never the k x bucket product.
         Uncoalesced batches compile for the bucket of the mixed sum,
         like the baseline scheduler. *)
      let launch_shapes =
        if config.coalesce then begin
          let prefills = List.filter (fun a -> a.a_prefill > 0) r.sl_act in
          let decodes = List.length r.sl_act - List.length prefills in
          let buckets =
            List.sort_uniq compare
              (List.map
                 (fun a -> Bucketing.bucket config.bucketing a.a_prefill)
                 prefills)
          in
          List.concat_map
            (fun b -> register_warm_shapes b (engine.Sch.step_shapes ~tokens:b))
            buckets
          @ (if decodes > 0 then
               let db = Bucketing.bucket config.bucketing decodes in
               register_warm_shapes db (engine.Sch.step_shapes ~tokens:db)
             else [])
        end
        else register_warm_shapes btokens (engine.Sch.step_shapes ~tokens:btokens)
      in
      List.iter
        (fun (shape, launches) ->
          for _ = 1 to launches do
            match Shape_cache.find r.sl_cache shape with
            | Some () -> ()
            | None -> (
              let warm_ready =
                match warm_store with
                | Some ws -> (
                  match Shape_cache.find ws shape with
                  | Some ready when ready <= now -> true
                  | _ -> false)
                | None -> false
              in
              if warm_ready then begin
                incr warm_hits;
                Tm.Metrics.incr m_warm_hits;
                Shape_cache.add r.sl_cache shape ()
              end
              else begin
                let c = engine.Sch.compile_seconds shape in
                stall := !stall +. c;
                Shape_cache.add r.sl_cache shape ();
                match warm_store with
                | Some ws ->
                  warm_now := now;
                  Shape_cache.add ws shape (now +. !stall)
                | None -> ()
              end)
          done)
        launch_shapes;
      let step_idx = r.sl_step in
      r.sl_step <- r.sl_step + 1;
      let slowdown = Plan.step_slowdown faults ~replica:r.sl_idx ~step:step_idx in
      if slowdown > 1. then incr injected;
      let dt =
        (engine.Sch.step_seconds ~tokens:btokens ~kv_tokens +. !stall)
        *. slowdown
      in
      stall_total := !stall_total +. !stall;
      Tm.Metrics.incr m_steps;
      let fin = now +. dt in
      if Plan.step_fails faults ~replica:r.sl_idx ~step:step_idx then begin
        (* Transient step fault: device time elapses, the step's work is
           lost, and the batch bounces back to its lanes for a fresh
           attempt (progress restarts, like a crash). *)
        incr injected;
        requeues := !requeues + List.length r.sl_act;
        List.iter (fun a -> Wfq.push_front q a.a_tg) (List.rev r.sl_act);
        r.sl_act <- []
      end
      else
        r.sl_act <-
          List.filter
            (fun a ->
              if a.a_prefill > 0 then begin
                a.a_kv <- a.a_prefill;
                a.a_prefill <- 0;
                true
              end
              else begin
                a.a_kv <- a.a_kv + 1;
                a.a_remaining <- a.a_remaining - 1;
                if Float.is_nan a.a_first then a.a_first <- fin;
                if a.a_remaining = 0 then begin
                  let c =
                    {
                      Sch.request = a.a_tg.Tenant.req;
                      first_token = a.a_first;
                      finish = fin;
                      replica = r.sl_idx;
                    }
                  in
                  completed := c :: !completed;
                  incr resolved;
                  if slo_met c then incr met_count;
                  Tm.Metrics.incr m_completed;
                  false
                end
                else true
              end)
            r.sl_act;
      r.sl_clock <- fin;
      makespan := Float.max !makespan fin;
      incr steps
    end
  in
  let rec loop () =
    let best = ref None in
    let consider time prio payload =
      match !best with
      | Some (bt, bp, _) when bt < time || (bt = time && bp <= prio) -> ()
      | _ -> best := Some (time, prio, payload)
    in
    (match !crashes_left with
    | (t, i) :: _ -> consider t prio_crash (`Crash i)
    | [] -> ());
    (match !pending with
    | tg :: _ -> consider tg.Tenant.req.Request.arrival prio_arrival `Arrival
    | [] -> ());
    if work_remains () then begin
      (match config.warm with
      | Some w -> consider !next_refresh prio_refresh (`Refresh w)
      | None -> ());
      match config.autoscale with
      | Some a -> consider !next_tick prio_scale (`Tick a)
      | None -> ()
    end;
    Array.iter
      (fun r ->
        match slot_next_time r with
        | Some t -> consider t prio_step (`Step r)
        | None -> ())
      slots;
    match !best with
    | None -> ()
    | Some (t, _, payload) ->
      (match payload with
      | `Crash i ->
        crashes_left := List.tl !crashes_left;
        do_crash i ~now:t
      | `Arrival ->
        let tg = List.hd !pending in
        pending := List.tl !pending;
        let admitted =
          match limiter with
          | Some l -> Ratelimit.admit l ~now:t tg
          | None -> true
        in
        if not admitted then begin
          (* Shed at the door, before the WFQ and before the learner —
             rate-limited traffic must not train the warm store. *)
          rate_limited := !rate_limited @ [ tg.Tenant.req ];
          incr resolved
        end
        else begin
          (match learner with
          | Some l ->
            Learner.observe l ~now:t
              ~tenant:tg.Tenant.tenant.Tenant.tenant_id
              ~signature:(signature tg)
              ~weight:
                (float_of_int (Tenant.weight tg.Tenant.tenant.Tenant.tier))
          | None -> ());
          Wfq.push q tg
        end
      | `Refresh w ->
        do_refresh w ~now:t;
        next_refresh := !next_refresh +. w.warm_interval
      | `Tick a ->
        do_tick a ~now:t;
        next_tick := !next_tick +. a.Autoscaler.interval
      | `Step r -> do_step r ~now:t);
      loop ()
  in
  loop ();
  let replica_seconds =
    !replica_acc
    +. List.fold_left
         (fun acc r -> acc +. Float.max 0. (!makespan -. r.sl_spawned))
         0. (active_slots ())
  in
  Tm.Metrics.gauge_add g_replicas
    (-.float_of_int (List.length (active_slots ())));
  let tenant_of = Tenant.lookup trace in
  let tiers =
    List.map
      (fun tier ->
        let of_tier id = (tenant_of id).Tenant.tier = tier in
        let reqs =
          List.length
            (List.filter
               (fun (tg : Tenant.tagged) ->
                 tg.Tenant.tenant.Tenant.tier = tier)
               trace)
        in
        let comps =
          List.filter
            (fun (c : Sch.completed) -> of_tier c.Sch.request.Request.id)
            !completed
        in
        let met = List.length (List.filter slo_met comps) in
        {
          tm_tier = tier;
          tm_requests = reqs;
          tm_completed = List.length comps;
          tm_slo_met = met;
          tm_attainment =
            (if reqs = 0 then 1.
             else float_of_int met /. float_of_int reqs);
        })
      Tenant.tiers
  in
  {
    completed = List.rev !completed;
    dropped = !dropped;
    rate_limited = !rate_limited;
    steps = !steps;
    makespan = !makespan;
    compile_stall_seconds = !stall_total;
    actual_tokens = !actual_tokens;
    padded_tokens = !padded_tokens;
    cache =
      (Array.to_list slots
      |> List.filter (fun r -> r.sl_active)
      |> List.map (fun r -> Shape_cache.stats r.sl_cache))
      @ List.rev !retired_caches;
    warm_stats = Option.map Shape_cache.stats warm_store;
    warm_hits = !warm_hits;
    warm_compiles = !warm_compiles;
    warm_background_seconds = !warm_bg_seconds;
    coalesced_groups = !coalesced_groups;
    queue_depth_sum = !qsum;
    queue_samples = !qsamples;
    crashes = !crash_count;
    injected_faults = !injected;
    requeues = !requeues;
    scale_ups = !scale_ups;
    scale_downs = !scale_downs;
    peak_replicas = !peak;
    replica_seconds;
    lanes = Wfq.stats q;
    tiers;
  }
