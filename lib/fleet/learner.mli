(** Online bucket learner: a decayed histogram of observed shape
    signatures per tenant.

    The fleet observes every arrival's bucketed shape signature and
    periodically asks for the top-K signatures by decayed mass; the warm
    store precompiles those buckets off the request critical path. Mass
    halves every [half_life] event-clock seconds, so the ranking tracks
    the live distribution rather than the whole history. Fully
    deterministic: ranking ties go to the smaller signature, never to
    hash order. *)

type t

val create : ?half_life:float -> unit -> t
(** [half_life] in event-clock seconds (default 1.0, must be > 0). *)

val observe : t -> now:float -> tenant:int -> signature:int -> weight:float -> unit
(** Add [weight] mass (typically the tenant's tier weight, so paid
    traffic steers the warm store harder) to [(tenant, signature)] at
    event time [now]. *)

val top_k : t -> now:float -> k:int -> (int * float) list
(** Signatures ranked by decayed mass summed across tenants, largest
    first, at most [k]; ties break to the smaller signature. *)

val mass : t -> now:float -> signature:int -> float
(** Decayed mass of one signature summed across tenants at event time
    [now]; 0 for a never-observed signature. The admission weight behind
    the warm store's mass-aware eviction
    ({!Mikpoly_serve.Shape_cache.create_weighted}). *)

val signatures : t -> int list
(** Every signature ever observed, ascending — for reports. *)
