module Request = Mikpoly_serve.Request

type tier = Gold | Silver | Best_effort

let tier_name = function
  | Gold -> "gold"
  | Silver -> "silver"
  | Best_effort -> "best-effort"

let weight = function Gold -> 4 | Silver -> 2 | Best_effort -> 1

let tiers = [ Gold; Silver; Best_effort ]

type t = {
  tenant_id : int;
  tenant_name : string;
  tier : tier;
}

type tagged = {
  req : Request.t;
  tenant : t;
}

let compare_by_id a b = compare a.tenant_id b.tenant_id

type spec = {
  tenant : t;
  rate : float;
  count : int;
}

let requests tagged = List.map (fun tg -> tg.req) tagged

type profile = {
  p_ttft : float option;
  p_tpot : float option;
  p_max_prompt : int option;
  p_max_output : int option;
  p_length_dist : Request.length_dist option;
}

let no_profile =
  {
    p_ttft = None;
    p_tpot = None;
    p_max_prompt = None;
    p_max_output = None;
    p_length_dist = None;
  }

(* Merge per-tenant Poisson streams into one fleet trace. Each tenant
   draws from its own seed-derived PRNG stream, so adding or resizing
   one tenant never perturbs another's arrivals; the merge re-identifies
   requests so ids are unique fleet-wide (the scheduler keys per-request
   state on them). *)
let trace ?length_dist ?ttft_budget ?tpot_budget
    ?(profiles = fun (_ : tier) -> no_profile) ~seed ~max_prompt ~max_output
    specs () =
  let ids = List.map (fun s -> s.tenant.tenant_id) specs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Tenant.trace: duplicate tenant ids";
  List.iter
    (fun s ->
      if s.tenant.tenant_id < 0 then
        invalid_arg "Tenant.trace: tenant ids must be non-negative")
    specs;
  let streams =
    List.map
      (fun s ->
        let tseed = seed + (0x9E3779B9 * (s.tenant.tenant_id + 1)) in
        (* Tier profiles override the trace-wide knobs: an interactive
           tier can carry a tight TTFT budget and chat-sized prompts
           while a batch tier on the same fleet submits long, loose-
           deadline jobs — the workload shape, not just the weight,
           follows the tier. *)
        let p = profiles s.tenant.tier in
        let pick_f o d = match o with Some v -> Some v | None -> d in
        let pick_i o d = match o with Some v -> v | None -> d in
        List.map
          (fun r -> { req = r; tenant = s.tenant })
          (Request.poisson
             ?length_dist:
               (match p.p_length_dist with
               | Some d -> Some d
               | None -> length_dist)
             ?ttft_budget:(pick_f p.p_ttft ttft_budget)
             ?tpot_budget:(pick_f p.p_tpot tpot_budget)
             ~seed:(abs tseed) ~rate:s.rate ~count:s.count
             ~max_prompt:(pick_i p.p_max_prompt max_prompt)
             ~max_output:(pick_i p.p_max_output max_output) ()))
      specs
  in
  List.concat streams
  |> List.stable_sort (fun a b ->
         match compare a.req.Request.arrival b.req.Request.arrival with
         | 0 -> (
           match compare_by_id a.tenant b.tenant with
           | 0 -> compare a.req.Request.id b.req.Request.id
           | c -> c)
         | c -> c)
  |> List.mapi (fun i tg -> { tg with req = { tg.req with Request.id = i } })

let lookup tagged =
  let table = Hashtbl.create (List.length tagged) in
  List.iter (fun tg -> Hashtbl.replace table tg.req.Request.id tg.tenant) tagged;
  fun id ->
    match Hashtbl.find_opt table id with
    | Some t -> t
    | None -> invalid_arg "Tenant.lookup: unknown request id"
