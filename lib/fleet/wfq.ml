module Request = Mikpoly_serve.Request

(* Start-time fair queueing across tenants. Each tenant owns a FIFO
   lane; a request reaching the head of its lane is stamped with a
   frozen finish tag [max(lane_finish, vtime) + cost/weight], and
   selection takes the eligible lane head with the smallest tag (ties
   to the lowest tenant id). Virtual time advances to the start tag of
   each grant, so an idle tenant re-enters at the current virtual time
   instead of burning credit it never used — the classic SFQ rule that
   yields the starvation bound: over any backlogged interval a tenant
   with weight w receives at least w/W of the granted cost, within one
   maximal request of exact. Freezing the tag at head-arrival (rather
   than recomputing it per selection) is what makes the bound real: a
   tag that chased the advancing virtual time would keep a light lane
   forever behind a backlogged heavy one. *)

type lane = {
  l_tenant : Tenant.t;
  mutable l_front : Tenant.tagged list;
  mutable l_back : Tenant.tagged list;  (* reversed tail, amortized *)
  mutable l_finish : float;
  mutable l_head_tag : float option;
      (* candidate finish tag of the current head, frozen when the
         request reached the head of its lane — recomputing it against
         the advancing virtual time would let a backlogged heavy lane
         outrun a waiting light one forever, breaking the bound *)
  mutable l_grants : int;
  mutable l_cost : float;
}

type t = {
  lanes : (int, lane) Hashtbl.t;
  mutable order : int list;  (* tenant ids ascending: deterministic scans *)
  mutable vtime : float;
  mutable size : int;
}

type lane_stats = {
  s_tenant : Tenant.t;
  s_queued : int;
  s_grants : int;
  s_cost : float;
}

let create () = { lanes = Hashtbl.create 8; order = []; vtime = 0.; size = 0 }

let lane t (tenant : Tenant.t) =
  match Hashtbl.find_opt t.lanes tenant.Tenant.tenant_id with
  | Some l -> l
  | None ->
    let l =
      {
        l_tenant = tenant;
        l_front = [];
        l_back = [];
        l_finish = 0.;
        l_head_tag = None;
        l_grants = 0;
        l_cost = 0.;
      }
    in
    Hashtbl.replace t.lanes tenant.Tenant.tenant_id l;
    t.order <- List.sort compare (tenant.Tenant.tenant_id :: t.order);
    l

let cost (tg : Tenant.tagged) = float_of_int (Request.tokens tg.Tenant.req)

(* Freeze the candidate finish tag of [tg] as it becomes the lane head:
   start at max(lane finish, current virtual time), finish a
   weight-scaled cost later. Frozen, not recomputed per selection — the
   tag must not chase the advancing virtual time. *)
let stamp t l tg =
  l.l_head_tag <-
    Some
      (Float.max l.l_finish t.vtime
      +. (cost tg /. float_of_int (Tenant.weight l.l_tenant.Tenant.tier)))

let push t (tg : Tenant.tagged) =
  let l = lane t tg.Tenant.tenant in
  let was_empty = l.l_front = [] && l.l_back = [] in
  l.l_back <- tg :: l.l_back;
  t.size <- t.size + 1;
  if was_empty then stamp t l tg

let push_front t (tg : Tenant.tagged) =
  let l = lane t tg.Tenant.tenant in
  l.l_front <- tg :: l.l_front;
  t.size <- t.size + 1;
  stamp t l tg

let length t = t.size

let is_empty t = t.size = 0

let head l =
  (match l.l_front with
  | [] ->
    l.l_front <- List.rev l.l_back;
    l.l_back <- []
  | _ -> ());
  match l.l_front with [] -> None | tg :: _ -> Some tg

let drop_head l =
  match l.l_front with
  | _ :: rest -> l.l_front <- rest
  | [] -> assert false

let iter_lanes t f =
  List.iter (fun id -> f (Hashtbl.find t.lanes id)) t.order

let to_list t =
  let acc = ref [] in
  iter_lanes t (fun l ->
      acc := !acc @ l.l_front @ List.rev l.l_back);
  !acc

(* WFQ-first lane whose head satisfies [admissible]: minimum frozen
   finish tag, ties to the lowest tenant id (the [order] scan gives the
   tie-break for free). *)
let select t ~admissible =
  let best = ref None in
  iter_lanes t (fun l ->
      match head l with
      | Some tg when admissible tg -> (
        let f =
          match l.l_head_tag with
          | Some f -> f
          | None ->
            stamp t l tg;
            Option.get l.l_head_tag
        in
        match !best with
        | Some (bf, _, _) when bf <= f -> ()
        | _ -> best := Some (f, l, tg))
      | _ -> ());
  !best

let grant t l tg =
  let w = float_of_int (Tenant.weight l.l_tenant.Tenant.tier) in
  let finish =
    match l.l_head_tag with
    | Some f -> f
    | None -> Float.max l.l_finish t.vtime +. (cost tg /. w)
  in
  (* Virtual time advances to the grant's start tag, monotonically — a
     tag frozen before other grants may start in the past. *)
  t.vtime <- Float.max t.vtime (finish -. (cost tg /. w));
  l.l_finish <- finish;
  l.l_grants <- l.l_grants + 1;
  l.l_cost <- l.l_cost +. cost tg;
  drop_head l;
  t.size <- t.size - 1;
  l.l_head_tag <- None;
  match head l with Some next -> stamp t l next | None -> ()

let take t ~max ~eligible ?(first = fun _ -> true) ?(group = fun _ _ -> true)
    () =
  if max <= 0 then []
  else
    match select t ~admissible:(fun tg -> eligible tg && first tg) with
    | None -> []
    | Some (_, l0, tg0) ->
      grant t l0 tg0;
      let taken = ref [ tg0 ] in
      let remaining = ref (max - 1) in
      let exhausted = ref false in
      while !remaining > 0 && not !exhausted do
        (* Coalescing preference: requests matching the group leader may
           jump ahead of WFQ order; when none match, fall back to plain
           WFQ order so the offer stays work-conserving. Either way the
           grant charges the request's own tenant, so jumping ahead
           never steals another tenant's share. *)
        let next =
          match
            select t ~admissible:(fun tg -> eligible tg && group tg0 tg)
          with
          | Some _ as s -> s
          | None -> select t ~admissible:eligible
        in
        match next with
        | None -> exhausted := true
        | Some (_, l, tg) ->
          grant t l tg;
          taken := tg :: !taken;
          decr remaining
      done;
      List.rev !taken

let stats t =
  let acc = ref [] in
  iter_lanes t (fun l ->
      acc :=
        {
          s_tenant = l.l_tenant;
          s_queued = List.length l.l_front + List.length l.l_back;
          s_grants = l.l_grants;
          s_cost = l.l_cost;
        }
        :: !acc);
  List.rev !acc
