module Request = Mikpoly_serve.Request
module Tm = Mikpoly_telemetry

let m_admitted = Tm.Metrics.counter "fleet.ratelimit.admitted"

let m_shed = Tm.Metrics.counter "fleet.ratelimit.shed"

type config = {
  rl_rate : float;
  rl_burst : float;
}

let validate c =
  if c.rl_rate <= 0. then invalid_arg "Ratelimit: rate must be > 0";
  if c.rl_burst < 1. then invalid_arg "Ratelimit: burst must be >= 1"

let for_tier ~base tier =
  let w = float_of_int (Tenant.weight tier) in
  { rl_rate = base.rl_rate *. w; rl_burst = base.rl_burst *. w }

type bucket = {
  b_config : config;
  b_tenant : Tenant.t;
  mutable b_tokens : float;
  mutable b_refilled : float;  (* event-clock instant of the last refill *)
  mutable b_admitted : int;
  mutable b_shed : int;
}

type t = {
  cost : Request.t -> float;
  rate_for : Tenant.t -> config;
  buckets : (int, bucket) Hashtbl.t;
}

let create ?(cost = fun _ -> 1.) ~rate_for () =
  { cost; rate_for; buckets = Hashtbl.create 16 }

let bucket t (tenant : Tenant.t) =
  match Hashtbl.find_opt t.buckets tenant.Tenant.tenant_id with
  | Some b -> b
  | None ->
    let config = t.rate_for tenant in
    validate config;
    let b =
      {
        b_config = config;
        b_tenant = tenant;
        b_tokens = config.rl_burst;
        b_refilled = 0.;
        b_admitted = 0;
        b_shed = 0;
      }
    in
    Hashtbl.replace t.buckets tenant.Tenant.tenant_id b;
    b

let admit t ~now (tg : Tenant.tagged) =
  let b = bucket t tg.Tenant.tenant in
  let dt = Float.max 0. (now -. b.b_refilled) in
  b.b_tokens <- Float.min b.b_config.rl_burst
      (b.b_tokens +. (dt *. b.b_config.rl_rate));
  b.b_refilled <- Float.max b.b_refilled now;
  let cost = t.cost tg.Tenant.req in
  if cost < 0. then invalid_arg "Ratelimit: negative request cost";
  if b.b_tokens >= cost then begin
    b.b_tokens <- b.b_tokens -. cost;
    b.b_admitted <- b.b_admitted + 1;
    Tm.Metrics.incr m_admitted;
    true
  end
  else begin
    b.b_shed <- b.b_shed + 1;
    Tm.Metrics.incr m_shed;
    false
  end

type stats = {
  rl_admitted : int;
  rl_shed : int;
  rl_tenants : int;
}

let sorted_buckets t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.buckets []
  |> List.sort (fun a b -> Tenant.compare_by_id a.b_tenant b.b_tenant)

let stats t =
  List.fold_left
    (fun acc b ->
      {
        rl_admitted = acc.rl_admitted + b.b_admitted;
        rl_shed = acc.rl_shed + b.b_shed;
        rl_tenants = acc.rl_tenants + 1;
      })
    { rl_admitted = 0; rl_shed = 0; rl_tenants = 0 }
    (sorted_buckets t)

let shed_by_tenant t =
  List.map (fun b -> (b.b_tenant, b.b_shed)) (sorted_buckets t)
