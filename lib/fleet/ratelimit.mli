(** Tenant-level rate limiting ahead of the WFQ.

    One token bucket per tenant: capacity [burst], refilled at [rate]
    tokens per second of the *event clock*, lazily at each admission
    decision — so the limiter is as deterministic as the clock it is
    fed, independent of wall time and [--jobs]. A request costs one
    token by default (pass [~cost] to charge token work instead).

    This is overload *shedding before admission*: a tenant whose
    arrival rate exceeds its refill rate has its excess refused at the
    door with a terminal "rate-limited" status, instead of entering the
    WFQ and being shed per-replica after admission (the SLO batcher's
    job). Tiers buy bigger buckets via [rate_for]. *)

type config = {
  rl_rate : float;  (** sustained tokens/second (> 0) *)
  rl_burst : float;  (** bucket capacity (>= 1 request cost) *)
}

val validate : config -> unit
(** Raises [Invalid_argument] on non-positive rate or burst. *)

val for_tier : base:config -> Tenant.tier -> config
(** Scale a base bucket by the tier's WFQ weight (4 : 2 : 1), so the
    shedding order under fleet-wide overload matches the service
    order. *)

type t

val create :
  ?cost:(Mikpoly_serve.Request.t -> float) ->
  rate_for:(Tenant.t -> config) ->
  unit ->
  t
(** Buckets are created lazily per tenant, full. [cost] defaults to
    [fun _ -> 1.] (each request is one token). *)

val admit : t -> now:float -> Tenant.tagged -> bool
(** Refill the request's tenant bucket up to [now], then try to spend
    the request's cost: [true] admits (tokens deducted), [false] sheds.
    [now] must not run backwards for a given tenant; the bucket clamps
    regressive clocks to the last refill instant. *)

type stats = {
  rl_admitted : int;
  rl_shed : int;
  rl_tenants : int;  (** distinct tenants seen *)
}

val stats : t -> stats

val shed_by_tenant : t -> (Tenant.t * int) list
(** Per-tenant shed counts in tenant-id order (admitted-only tenants
    included with 0). *)
