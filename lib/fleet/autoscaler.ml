type config = {
  min_replicas : int;
  max_replicas : int;
  up_queue_depth : float;
  down_queue_depth : float;
  slo_floor : float;
  stall_ceiling : float;
  cooldown : float;
  interval : float;
}

let default =
  {
    min_replicas = 1;
    max_replicas = 8;
    up_queue_depth = 4.;
    down_queue_depth = 0.5;
    slo_floor = 0.9;
    stall_ceiling = 0.5;
    cooldown = 0.5;
    interval = 0.25;
  }

let validate c =
  if c.min_replicas < 1 then
    invalid_arg "Autoscaler: min_replicas must be >= 1";
  if c.max_replicas < c.min_replicas then
    invalid_arg "Autoscaler: max_replicas must be >= min_replicas";
  if c.down_queue_depth < 0. || c.up_queue_depth <= c.down_queue_depth then
    invalid_arg
      "Autoscaler: need 0 <= down_queue_depth < up_queue_depth (hysteresis)";
  if c.slo_floor < 0. || c.slo_floor > 1. then
    invalid_arg "Autoscaler: slo_floor must be in [0, 1]";
  if c.stall_ceiling < 0. || c.stall_ceiling > 1. then
    invalid_arg "Autoscaler: stall_ceiling must be in [0, 1]";
  if c.cooldown < 0. then invalid_arg "Autoscaler: cooldown must be >= 0";
  if c.interval <= 0. then invalid_arg "Autoscaler: interval must be > 0"

type signal = {
  queue_depth : float;
  slo_attainment : float;
  stall_ratio : float;
  live_replicas : int;
  down_replicas : int;
}

type decision = Hold | Scale_up | Scale_down

let decision_name = function
  | Hold -> "hold"
  | Scale_up -> "scale-up"
  | Scale_down -> "scale-down"

(* Hysteresis: scale up above [up_queue_depth] (or below the SLO floor),
   scale down only below the strictly smaller [down_queue_depth] — the
   gap prevents flapping, and [cooldown] spaces consecutive changes.
   Two fault-plane rules: a crashed replica counts against capacity
   (down replicas are part of the fleet for the max bound) and is NEVER
   read as a scale-down signal — low queue depth while replicas are
   down means the fleet is shedding, not over-provisioned. And when the
   stall ratio is already above [stall_ceiling], adding a cold-cache
   replica would add compile stalls, not capacity — hold instead. *)
let decide c ~last_change ~now signal =
  if signal.live_replicas + signal.down_replicas < c.min_replicas then
    Scale_up
  else if now -. last_change < c.cooldown then Hold
  else begin
    let overloaded =
      signal.queue_depth > c.up_queue_depth
      || signal.slo_attainment < c.slo_floor
    in
    if overloaded then
      if
        signal.live_replicas + signal.down_replicas < c.max_replicas
        && signal.stall_ratio <= c.stall_ceiling
      then Scale_up
      else Hold
    else if signal.down_replicas > 0 then Hold
    else if
      signal.queue_depth < c.down_queue_depth
      && signal.slo_attainment >= c.slo_floor
      && signal.live_replicas > c.min_replicas
    then Scale_down
    else Hold
  end
