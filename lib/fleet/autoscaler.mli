(** Telemetry-driven replica autoscaling with hysteresis.

    A pure decision function over fleet signals — the {!Fleet} event
    loop samples the signals every [interval] and applies the decision,
    so scaling is deterministic and replayable. Scale up above
    [up_queue_depth] waiting requests per live replica (or when SLO
    attainment falls below [slo_floor]); scale down only below the
    strictly smaller [down_queue_depth] — the gap between the two
    thresholds is the hysteresis band that prevents flapping, and
    [cooldown] spaces consecutive changes.

    Fault-plane interaction (PR 5): a crashed replica counts against
    capacity — it occupies a fleet slot for the [max_replicas] bound —
    and is never read as a scale-down signal; while any replica is
    down, the fleet holds rather than shrinks. A stall ratio above
    [stall_ceiling] also blocks scale-up: a fresh replica starts with a
    cold program cache, so adding one to a compile-bound fleet adds
    stalls, not capacity. *)

type config = {
  min_replicas : int;
  max_replicas : int;
  up_queue_depth : float;  (** waiting per live replica; scale up above *)
  down_queue_depth : float;  (** scale down below; must be < up threshold *)
  slo_floor : float;  (** running SLO attainment; scale up below *)
  stall_ceiling : float;
      (** compile-stall fraction of busy time above which scale-up is
          pointless (cold caches would add stalls) *)
  cooldown : float;  (** seconds between consecutive scale changes *)
  interval : float;  (** seconds between signal samples *)
}

val default : config

val validate : config -> unit
(** Raises [Invalid_argument] on non-sensical bounds (e.g. no
    hysteresis gap). *)

type signal = {
  queue_depth : float;  (** waiting requests per live replica *)
  slo_attainment : float;  (** SLO-met fraction of requests resolved so far *)
  stall_ratio : float;  (** compile-stall share of elapsed serving time *)
  live_replicas : int;  (** active and not crashed *)
  down_replicas : int;  (** crashed, pending restart *)
}

type decision = Hold | Scale_up | Scale_down

val decision_name : decision -> string

val decide : config -> last_change:float -> now:float -> signal -> decision
(** Pure and total; [last_change] is the event time of the previous
    applied scale change (or the run start). Restoring the [min_replicas]
    floor bypasses the cooldown — a fleet below minimum is an outage,
    not an optimization opportunity. *)
