(* Unit tests for the serving runtime: bounded LRU shape cache,
   bucketing arithmetic, admission policies, and the multi-replica
   scheduler's determinism and accounting. *)

open Mikpoly_serve

let req ?(ttft = 0.25) ?(e2e = 1.0) ~id ~arrival ?(prompt = 8) ?(output = 4) () =
  {
    Request.id;
    arrival;
    prompt_len = prompt;
    output_len = output;
    slo = { Request.ttft; e2e };
  }

(* --- Shape_cache --- *)

let test_lru_eviction_order () =
  let c = Shape_cache.create ~capacity:3 in
  Shape_cache.add c (1, 1, 1) "a";
  Shape_cache.add c (2, 2, 2) "b";
  Shape_cache.add c (3, 3, 3) "c";
  Alcotest.(check (list (triple int int int)))
    "insertion order is LRU order"
    [ (1, 1, 1); (2, 2, 2); (3, 3, 3) ]
    (Shape_cache.lru_order c);
  (* Touching the oldest entry makes it the youngest. *)
  Alcotest.(check (option string)) "hit" (Some "a") (Shape_cache.find c (1, 1, 1));
  Alcotest.(check (list (triple int int int)))
    "recency updated"
    [ (2, 2, 2); (3, 3, 3); (1, 1, 1) ]
    (Shape_cache.lru_order c);
  (* A fourth insert evicts the now-least-recently-used (2,2,2). *)
  Shape_cache.add c (4, 4, 4) "d";
  Alcotest.(check (list (triple int int int)))
    "LRU victim evicted"
    [ (3, 3, 3); (1, 1, 1); (4, 4, 4) ]
    (Shape_cache.lru_order c);
  Alcotest.(check (option string)) "victim gone" None (Shape_cache.find c (2, 2, 2))

let test_cache_stats_counters () =
  let c = Shape_cache.create ~capacity:2 in
  ignore (Shape_cache.find c (1, 1, 1));
  Shape_cache.add c (1, 1, 1) ();
  ignore (Shape_cache.find c (1, 1, 1));
  Shape_cache.add c (2, 2, 2) ();
  Shape_cache.add c (3, 3, 3) ();
  let s = Shape_cache.stats c in
  Alcotest.(check int) "hits" 1 s.Shape_cache.hits;
  Alcotest.(check int) "misses" 1 s.Shape_cache.misses;
  Alcotest.(check int) "insertions" 3 s.Shape_cache.insertions;
  Alcotest.(check int) "evictions" 1 s.Shape_cache.evictions;
  Alcotest.(check int) "size" 2 s.Shape_cache.size;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Shape_cache.hit_rate s);
  let t = Shape_cache.total [ s; s ] in
  Alcotest.(check int) "total sums hits" 2 t.Shape_cache.hits;
  Alcotest.(check int) "total sums size" 4 t.Shape_cache.size

let test_cache_capacity_zero () =
  let c = Shape_cache.create ~capacity:0 in
  Shape_cache.add c (1, 1, 1) ();
  Alcotest.(check int) "retains nothing" 0 (Shape_cache.size c);
  Alcotest.(check (option unit)) "always misses" None (Shape_cache.find c (1, 1, 1));
  let s = Shape_cache.stats c in
  Alcotest.(check int) "miss counted" 1 s.Shape_cache.misses;
  Alcotest.(check int) "no eviction churn" 0 s.Shape_cache.evictions

(* --- Bucketing --- *)

let test_bucketing_policies () =
  Alcotest.(check int) "exact" 13 (Bucketing.bucket Bucketing.Exact 13);
  Alcotest.(check int) "aligned up" 16 (Bucketing.bucket (Bucketing.Aligned 8) 13);
  Alcotest.(check int) "aligned fixpoint" 16 (Bucketing.bucket (Bucketing.Aligned 8) 16);
  Alcotest.(check int) "pow2" 16 (Bucketing.bucket Bucketing.Pow2 9);
  Alcotest.(check int) "pow2 fixpoint" 8 (Bucketing.bucket Bucketing.Pow2 8);
  Alcotest.(check int) "fixed" 256 (Bucketing.bucket (Bucketing.Fixed 256) 13);
  Alcotest.(check int) "fixed multiple" 512 (Bucketing.bucket (Bucketing.Fixed 256) 300);
  Alcotest.(check (float 1e-9)) "padded ratio" (16. /. 13.)
    (Bucketing.padded_ratio (Bucketing.Aligned 8) 13);
  Alcotest.(check (float 1e-9)) "exact ratio is 1" 1.
    (Bucketing.padded_ratio Bucketing.Exact 13)

let test_bucketing_of_string_roundtrip () =
  List.iter
    (fun p ->
      match Bucketing.of_string (Bucketing.name p) with
      | Ok q -> Alcotest.(check string) "roundtrip" (Bucketing.name p) (Bucketing.name q)
      | Error e -> Alcotest.fail e)
    [ Bucketing.Exact; Bucketing.Aligned 8; Bucketing.Pow2; Bucketing.Fixed 256 ];
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Bucketing.of_string "nonsense"))

(* --- Batcher --- *)

let test_greedy_admission () =
  let waiting = [ req ~id:2 ~arrival:0.2 (); req ~id:1 ~arrival:0.1 () ] in
  let d =
    Batcher.admit (Batcher.Greedy { max_batch = 2 }) ~now:1.0 ~in_flight:1 ~waiting
  in
  Alcotest.(check (list int)) "oldest first, capped by in-flight" [ 1 ]
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.admitted);
  Alcotest.(check (list int)) "rest deferred" [ 2 ]
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.deferred);
  Alcotest.(check (list int)) "greedy never drops" []
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.dropped)

let test_timeout_admission () =
  let p = Batcher.Timeout { max_batch = 4; window = 0.1 } in
  let waiting = [ req ~id:1 ~arrival:0.0 (); req ~id:2 ~arrival:0.35 () ] in
  (* Before the window elapses nothing is admitted... *)
  let early = Batcher.admit p ~now:0.05 ~in_flight:0 ~waiting in
  Alcotest.(check int) "held back" 0 (List.length early.Batcher.admitted);
  (* ...at exactly the instant next_eligible reports, the oldest is. *)
  let t =
    match Batcher.next_eligible p ~waiting with
    | Some t -> t
    | None -> Alcotest.fail "queue is non-empty"
  in
  let d = Batcher.admit p ~now:t ~in_flight:0 ~waiting in
  Alcotest.(check (list int)) "aged request admitted at next_eligible" [ 1 ]
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.admitted);
  (* A queue that alone fills the batch is released immediately. *)
  let full =
    List.init 4 (fun i -> req ~id:i ~arrival:(float_of_int i *. 1e-3) ())
  in
  let d = Batcher.admit p ~now:0.004 ~in_flight:0 ~waiting:full in
  Alcotest.(check int) "full batch skips the window" 4
    (List.length d.Batcher.admitted)

let test_slo_aware_admission () =
  let p = Batcher.Slo_aware { max_batch = 2 } in
  let expired = req ~id:1 ~arrival:0.0 ~e2e:0.5 () in
  let tight = req ~id:2 ~arrival:0.8 ~e2e:0.4 () in
  let loose = req ~id:3 ~arrival:0.7 ~e2e:2.0 () in
  let d = Batcher.admit p ~now:1.0 ~in_flight:0 ~waiting:[ loose; tight; expired ] in
  Alcotest.(check (list int)) "expired request shed" [ 1 ]
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.dropped);
  Alcotest.(check (list int)) "earliest deadline first" [ 2; 3 ]
    (List.map (fun (r : Request.t) -> r.id) d.Batcher.admitted)

let test_next_eligible () =
  Alcotest.(check (option (float 1e-9))) "empty queue" None
    (Batcher.next_eligible (Batcher.Greedy { max_batch = 4 }) ~waiting:[]);
  let waiting = [ req ~id:1 ~arrival:0.3 (); req ~id:2 ~arrival:0.6 () ] in
  Alcotest.(check (option (float 1e-9))) "greedy: earliest arrival" (Some 0.3)
    (Batcher.next_eligible (Batcher.Greedy { max_batch = 4 }) ~waiting);
  Alcotest.(check (option (float 1e-9))) "timeout: arrival + window" (Some 0.4)
    (Batcher.next_eligible (Batcher.Timeout { max_batch = 4; window = 0.1 }) ~waiting)

let test_next_eligible_edges () =
  (* Empty queue: None for every policy — the only case with no event. *)
  List.iter
    (fun p ->
      Alcotest.(check (option (float 1e-9)))
        (Batcher.name p ^ ": empty queue") None
        (Batcher.next_eligible p ~waiting:[]))
    [
      Batcher.Greedy { max_batch = 4 };
      Batcher.Timeout { max_batch = 4; window = 0.1 };
      Batcher.Slo_aware { max_batch = 4 };
    ];
  (* Timeout window expiring exactly at [now]: the instant next_eligible
     reports must admit — [now >= arrival +. window] is deliberately
     non-strict, else the event loop would livelock at that instant. *)
  let p = Batcher.Timeout { max_batch = 4; window = 0.1 } in
  let waiting = [ req ~id:1 ~arrival:0.3 () ] in
  let at = Option.get (Batcher.next_eligible p ~waiting) in
  Alcotest.(check (float 1e-9)) "reported instant" 0.4 at;
  let d = Batcher.admit p ~now:at ~in_flight:0 ~waiting in
  Alcotest.(check (list int)) "admits at exactly the reported instant" [ 1 ]
    (List.map (fun (r : Request.t) -> r.Request.id) d.Batcher.admitted);
  (* Slo_aware with every waiting request past its deadline: the queue
     still has a pending event (the shed), so next_eligible must report
     the drop instant, not None — and admitting there drops them all. *)
  let p = Batcher.Slo_aware { max_batch = 4 } in
  let expired =
    [ req ~id:1 ~arrival:0.1 ~e2e:0.5 (); req ~id:2 ~arrival:0.2 ~e2e:0.5 () ]
  in
  Alcotest.(check (option (float 1e-9)))
    "all-expired queue still reports an instant" (Some 0.1)
    (Batcher.next_eligible p ~waiting:expired);
  let d = Batcher.admit p ~now:5.0 ~in_flight:0 ~waiting:expired in
  Alcotest.(check int) "nothing admitted" 0 (List.length d.Batcher.admitted);
  Alcotest.(check int) "nothing deferred" 0 (List.length d.Batcher.deferred);
  Alcotest.(check (list int)) "both shed" [ 1; 2 ]
    (List.sort compare (List.map (fun (r : Request.t) -> r.Request.id) d.Batcher.dropped))

(* --- Scheduler + Metrics --- *)

let trace = Request.poisson ~seed:42 ~rate:40. ~count:24 ~max_prompt:32 ~max_output:6 ()

let config =
  {
    Scheduler.replicas = 2;
    batcher = Batcher.Greedy { max_batch = 8 };
    bucketing = Bucketing.Aligned 4;
    cache_capacity = 16;
  }

let test_scheduler_deterministic () =
  let engine = Scheduler.synthetic_engine () in
  let m1 = Metrics.of_outcome (Scheduler.run config engine trace) in
  let m2 = Metrics.of_outcome (Scheduler.run config engine trace) in
  Alcotest.(check bool) "identical metrics on identical input" true (m1 = m2);
  Alcotest.(check int) "all requests complete" 24 m1.Metrics.completed

let test_scheduler_conservation () =
  let engine = Scheduler.synthetic_engine () in
  (* A burst far beyond one replica's capacity with tight deadlines
     forces the SLO-aware batcher to shed the back of the queue. *)
  let tight =
    List.init 20 (fun i ->
        req ~id:i ~arrival:(float_of_int i *. 1e-4) ~e2e:10e-3 ~output:4 ())
  in
  let o =
    Scheduler.run
      {
        config with
        replicas = 1;
        batcher = Batcher.Slo_aware { max_batch = 2 };
      }
      engine tight
  in
  Alcotest.(check int) "completed + dropped = requests" (List.length tight)
    (List.length o.Scheduler.completed + List.length o.Scheduler.dropped);
  Alcotest.(check bool) "some requests shed" true (o.Scheduler.dropped <> []);
  List.iter
    (fun (c : Scheduler.completed) ->
      Alcotest.(check bool) "first token after arrival" true
        (c.first_token > c.request.Request.arrival);
      Alcotest.(check bool) "finish after first token" true
        (c.finish >= c.first_token))
    o.Scheduler.completed

let test_scheduler_padding_accounting () =
  let engine = Scheduler.synthetic_engine () in
  let o = Scheduler.run { config with bucketing = Bucketing.Fixed 64 } engine trace in
  Alcotest.(check bool) "padded >= actual" true
    (o.Scheduler.padded_tokens >= o.Scheduler.actual_tokens);
  Alcotest.(check int) "fixed bucket: padded is a multiple of 64" 0
    (o.Scheduler.padded_tokens mod 64);
  let exact = Scheduler.run config engine trace in
  Alcotest.(check bool) "aligned pads less than fixed-64" true
    (exact.Scheduler.padded_tokens <= o.Scheduler.padded_tokens)

let test_cache_beats_no_cache () =
  (* A compile stall comparable to the step time makes caching decisive. *)
  let engine = Scheduler.synthetic_engine ~compile:1e-3 () in
  let cached = Metrics.of_outcome (Scheduler.run config engine trace) in
  let uncached =
    Metrics.of_outcome
      (Scheduler.run { config with cache_capacity = 0 } engine trace)
  in
  Alcotest.(check bool) "cached p95 strictly lower" true
    (cached.Metrics.latency_p95 < uncached.Metrics.latency_p95);
  Alcotest.(check bool) "cached stalls less" true
    (cached.Metrics.compile_stall_seconds < uncached.Metrics.compile_stall_seconds);
  Alcotest.(check (float 1e-9)) "no-cache never hits" 0. uncached.Metrics.cache_hit_rate;
  Alcotest.(check bool) "cached mostly hits" true (cached.Metrics.cache_hit_rate > 0.9)

let test_empty_trace () =
  let engine = Scheduler.synthetic_engine () in
  let m = Metrics.of_outcome (Scheduler.run config engine []) in
  Alcotest.(check int) "no requests" 0 m.Metrics.requests;
  Alcotest.(check (float 1e-9)) "zero throughput" 0. m.Metrics.throughput_rps

let test_adapt_hook_noop () =
  (* A hook that never reports work is indistinguishable from no hook. *)
  let engine = Scheduler.synthetic_engine () in
  let plain = Metrics.of_outcome (Scheduler.run config engine trace) in
  let hooked =
    Metrics.of_outcome (Scheduler.run ~adapt:(fun () -> 0.) config engine trace)
  in
  Alcotest.(check bool) "identical metrics" true (plain = hooked);
  Alcotest.(check (float 1e-12)) "no adapt stall" 0.
    hooked.Metrics.adapt_stall_seconds

let test_adapt_hook_charges_stall () =
  (* A one-shot adaptation stall is charged on the stepping replica's
     event clock: it is paid exactly once, extends the makespan and is
     visible to later steps (the polling is per step, so only the first
     poll sees the pending work). *)
  let engine = Scheduler.synthetic_engine () in
  (* Larger than the trace's arrival span so the stall cannot be hidden
     inside idle time spent waiting for the next Poisson arrival. *)
  let stall = 10. in
  let pending = ref stall in
  let adapt () =
    let s = !pending in
    pending := 0.;
    s
  in
  let plain = Scheduler.run config engine trace in
  let adapted = Scheduler.run ~adapt config engine trace in
  Alcotest.(check (float 1e-12)) "stall accounted once" stall
    adapted.Scheduler.adapt_stall_seconds;
  Alcotest.(check (float 1e-12)) "drained" 0. !pending;
  Alcotest.(check bool) "makespan extended" true
    (adapted.Scheduler.makespan >= stall
    && adapted.Scheduler.makespan >= plain.Scheduler.makespan);
  Alcotest.(check int) "work conserved" (List.length plain.Scheduler.completed)
    (List.length adapted.Scheduler.completed)

let test_poisson_trace_properties () =
  Alcotest.(check int) "count respected" 24 (List.length trace);
  let sorted = List.stable_sort Request.compare_arrival trace in
  Alcotest.(check bool) "sorted by arrival" true (trace = sorted);
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check bool) "positive lengths" true
        (r.prompt_len >= 1 && r.output_len >= 1 && r.prompt_len <= 32
        && r.output_len <= 6))
    trace;
  let again = Request.poisson ~seed:42 ~rate:40. ~count:24 ~max_prompt:32 ~max_output:6 () in
  Alcotest.(check bool) "same seed, same trace" true (trace = again);
  let bursty =
    Request.bursty ~seed:7 ~base_rate:5. ~burst_rate:100. ~period:1. ~duty:0.25
      ~count:40 ~max_prompt:16 ~max_output:4 ()
  in
  Alcotest.(check int) "bursty count" 40 (List.length bursty)

let test_heavy_tail_traces () =
  let gen dist =
    Request.poisson ~length_dist:dist ~seed:11 ~rate:20. ~count:200
      ~max_prompt:4096 ~max_output:64 ()
  in
  let pareto = gen (Request.Pareto { alpha = 1.1 }) in
  let lognormal = gen (Request.Log_normal { sigma = 2.0 }) in
  (* Determinism: same seed and distribution, bit-identical trace. *)
  Alcotest.(check bool) "pareto reproducible" true
    (pareto = gen (Request.Pareto { alpha = 1.1 }));
  Alcotest.(check bool) "lognormal reproducible" true
    (lognormal = gen (Request.Log_normal { sigma = 2.0 }));
  Alcotest.(check bool) "distinct tails diverge" true (pareto <> lognormal);
  (* Lengths stay clamped to [1, max] under any tail. *)
  List.iter
    (fun (r : Request.t) ->
      Alcotest.(check bool) "clamped" true
        (r.prompt_len >= 1 && r.prompt_len <= 4096 && r.output_len >= 1
        && r.output_len <= 64))
    (pareto @ lognormal);
  (* Heavy tail: mass concentrates near 1 yet huge prompts appear — the
     defining shape log-uniform lacks. Both facts are deterministic
     under the fixed seed. *)
  let prompts = List.map (fun (r : Request.t) -> r.prompt_len) pareto in
  let small = List.length (List.filter (fun p -> p <= 8) prompts) in
  Alcotest.(check bool) "pareto mass near x_min" true
    (small > List.length prompts / 2);
  Alcotest.(check bool) "pareto tail reaches large prompts" true
    (List.exists (fun p -> p >= 256) prompts);
  Alcotest.(check string) "dist names" "log-uniform/pareto-1.1/lognormal-2"
    (String.concat "/"
       (List.map Request.dist_name
          [ Request.Log_uniform; Request.Pareto { alpha = 1.1 };
            Request.Log_normal { sigma = 2.0 } ]));
  Alcotest.check_raises "pareto alpha validated"
    (Invalid_argument "Request: Pareto alpha must be positive") (fun () ->
      ignore (gen (Request.Pareto { alpha = 0. })));
  Alcotest.check_raises "lognormal sigma validated"
    (Invalid_argument "Request: Log_normal sigma must be positive") (fun () ->
      ignore (gen (Request.Log_normal { sigma = -1. })))

let () =
  Alcotest.run "serve"
    [
      ( "shape_cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "stats counters" `Quick test_cache_stats_counters;
          Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
        ] );
      ( "bucketing",
        [
          Alcotest.test_case "policies" `Quick test_bucketing_policies;
          Alcotest.test_case "of_string roundtrip" `Quick
            test_bucketing_of_string_roundtrip;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "greedy" `Quick test_greedy_admission;
          Alcotest.test_case "timeout" `Quick test_timeout_admission;
          Alcotest.test_case "slo-aware" `Quick test_slo_aware_admission;
          Alcotest.test_case "next_eligible" `Quick test_next_eligible;
          Alcotest.test_case "next_eligible edge cases" `Quick
            test_next_eligible_edges;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deterministic" `Quick test_scheduler_deterministic;
          Alcotest.test_case "conservation" `Quick test_scheduler_conservation;
          Alcotest.test_case "padding accounting" `Quick
            test_scheduler_padding_accounting;
          Alcotest.test_case "cache beats no-cache" `Quick test_cache_beats_no_cache;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "adapt hook no-op" `Quick test_adapt_hook_noop;
          Alcotest.test_case "adapt hook charges stall" `Quick
            test_adapt_hook_charges_stall;
          Alcotest.test_case "poisson trace" `Quick test_poisson_trace_properties;
          Alcotest.test_case "heavy-tail traces" `Quick test_heavy_tail_traces;
        ] );
    ]
