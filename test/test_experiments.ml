(* Integration tests: every experiment driver runs (in quick mode) and its
   headline results point the same direction as the paper's. *)

open Mikpoly_experiments

let run id =
  match Registry.find id with
  | Some e -> e.run ~quick:true
  | None -> Alcotest.fail ("unknown experiment " ^ id)

let tables_nonempty (r : Exp.report) =
  r.tables <> []
  && List.for_all (fun t -> Mikpoly_util.Table.rows t <> []) r.tables

let test_registry_complete () =
  (* One entry per paper artifact we reproduce. *)
  let expected =
    [ "tab1"; "fig1"; "tab3"; "tab4"; "fig6"; "fig7"; "fig8"; "fig9";
      "npu_e2e"; "fig10"; "tab5"; "tab8"; "fig11"; "fig12"; "fig13";
      "case_study"; "ablations"; "winograd"; "fusion"; "inflight"; "batched";
      "costmodel"; "serving"; "adaptation"; "resilience"; "graph"; "fleet";
      "hetero"; "rank" ]
  in
  Alcotest.(check (list string)) "registry ids" expected Registry.ids;
  List.iter
    (fun id -> Alcotest.(check bool) id true (Registry.find id <> None))
    expected

let test_all_experiments_produce_tables () =
  List.iter
    (fun (e : Exp.t) ->
      let r = e.run ~quick:true in
      Alcotest.(check bool) (e.id ^ " renders") true
        (String.length (Exp.render r) > 0);
      Alcotest.(check bool) (e.id ^ " has rows") true (tables_nonempty r);
      Alcotest.(check string) (e.id ^ " id matches") e.id r.id)
    Registry.all

let mean_speedup_of_row report ~table_index ~label =
  let t = List.nth report.Exp.tables table_index in
  let row =
    List.find_opt (fun r -> List.hd r = label) (Mikpoly_util.Table.rows t)
  in
  match row with
  | Some (_ :: mean :: _) ->
    float_of_string (String.sub mean 0 (String.length mean - 1))
  | _ -> Alcotest.fail ("row not found: " ^ label)

let test_fig1_shows_spread () =
  let r = run "fig1" in
  Alcotest.(check bool) "summary mentions spread" true
    (List.exists (fun s -> String.length s > 0) r.summary)

let test_fig6_direction () =
  let r = run "fig6" in
  let mik_gemm = mean_speedup_of_row r ~table_index:0 ~label:"GEMM: MikPoly vs cuBLAS" in
  let mik_conv = mean_speedup_of_row r ~table_index:0 ~label:"conv: MikPoly vs cuDNN" in
  let cut_gemm = mean_speedup_of_row r ~table_index:0 ~label:"GEMM: CUTLASS vs cuBLAS" in
  Alcotest.(check bool) "MikPoly beats cuBLAS on average" true (mik_gemm > 1.0);
  Alcotest.(check bool) "MikPoly beats cuDNN on average" true (mik_conv > 1.0);
  Alcotest.(check bool) "CUTLASS does not beat cuBLAS on average" true (cut_gemm < 1.1)

let test_fig7_direction () =
  let r = run "fig7" in
  let gemm = mean_speedup_of_row r ~table_index:0 ~label:"GEMM: MikPoly vs CANN" in
  let conv = mean_speedup_of_row r ~table_index:0 ~label:"conv: MikPoly vs CANN" in
  Alcotest.(check bool) "GEMM >= 1x" true (gemm >= 1.0);
  Alcotest.(check bool) "conv >= 1x and > GEMM" true (conv >= 1.0)

let test_fig10_ordering () =
  let r = run "fig10" in
  let mik = mean_speedup_of_row r ~table_index:0 ~label:"MikPoly vs DietCode" in
  let nim = mean_speedup_of_row r ~table_index:0 ~label:"Nimble vs DietCode" in
  Alcotest.(check bool) "MikPoly > DietCode" true (mik > 1.0);
  Alcotest.(check bool) "Nimble < DietCode (paper ordering)" true (nim < 1.0)

let test_tab5_invalid_runs () =
  let r = run "tab5" in
  let t = List.hd r.Exp.tables in
  let rows = Mikpoly_util.Table.rows t in
  Alcotest.(check bool) "has model rows" true (rows <> []);
  List.iter
    (fun row ->
      match row with
      | [ _model; _d; _n; _c; diet_invalid; _nim_invalid; mik_invalid ] ->
        Alcotest.(check bool) "DietCode has invalid runs" true
          (int_of_string diet_invalid > 0);
        Alcotest.(check string) "MikPoly has none" "0" mik_invalid
      | _ -> Alcotest.fail "unexpected row shape")
    rows

let test_case_study_improvement () =
  let r = run "case_study" in
  (* The Table 9 reproduction: GEMM-AB restores sm_efficiency. *)
  Alcotest.(check bool) "summaries present" true (List.length r.summary >= 2)

let test_fig12_ablation_ordering () =
  let r = run "fig12" in
  let t = List.nth r.Exp.tables 1 in
  let value name =
    let row =
      List.find (fun row -> List.hd row = name) (Mikpoly_util.Table.rows t)
    in
    let v = List.nth row 1 in
    float_of_string (String.sub v 0 (String.length v - 1))
  in
  let full = value "MikPoly" in
  Alcotest.(check bool) "full model close to oracle" true (full > 0.85);
  Alcotest.(check bool) "full >= wave variant" true
    (full >= value "MikPoly-Wave" -. 0.02);
  Alcotest.(check bool) "full >= pipe variant" true
    (full >= value "MikPoly-Pipe" -. 0.02)

let test_backends_helpers () =
  Alcotest.(check (option (float 1e-9))) "speedup" (Some 2.)
    (Backends.speedup_or_skip ~baseline:(Ok 2.) ~target:(Ok 1.));
  Alcotest.(check (option (float 1e-9))) "skip on error" None
    (Backends.speedup_or_skip ~baseline:(Error "x") ~target:(Ok 1.))

let test_flops_buckets () =
  let cases = [ (1e3, 2.); (2e3, 4.); (1e6, 1.) ] in
  let buckets = Exp.flops_buckets ~flops:fst ~speedup:snd cases in
  Alcotest.(check int) "two buckets" 2 (List.length buckets);
  match buckets with
  | (label, mean, n) :: _ ->
    Alcotest.(check string) "first decade" "1e3-1e4" label;
    Alcotest.(check (float 1e-9)) "mean" 3. mean;
    Alcotest.(check int) "count" 2 n
  | [] -> Alcotest.fail "no buckets"

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "all run and render" `Slow
            test_all_experiments_produce_tables;
        ] );
      ( "directions",
        [
          Alcotest.test_case "fig1 spread" `Quick test_fig1_shows_spread;
          Alcotest.test_case "fig6 direction" `Quick test_fig6_direction;
          Alcotest.test_case "fig7 direction" `Quick test_fig7_direction;
          Alcotest.test_case "fig10 ordering" `Quick test_fig10_ordering;
          Alcotest.test_case "tab5 invalid runs" `Quick test_tab5_invalid_runs;
          Alcotest.test_case "case study" `Quick test_case_study_improvement;
          Alcotest.test_case "fig12 ablation ordering" `Quick
            test_fig12_ablation_ordering;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "backends helpers" `Quick test_backends_helpers;
          Alcotest.test_case "flops buckets" `Quick test_flops_buckets;
        ] );
    ]
