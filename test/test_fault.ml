(* Tests for the fault-injection plane and the resilience machinery it
   exercises: seeded fault-plan determinism, retry backoff/jitter
   bounds, circuit-breaker state transitions, crash-safe artifact
   writes, checksum rejection in both stores, degradation-ladder rung
   selection per corruption mode, and the chaos scheduler's
   conservation + reproducibility invariants. *)

open Mikpoly_fault
module Atomic_file = Mikpoly_util.Atomic_file

let gpu = Mikpoly_accel.Hardware.a100

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- Plan --- *)

let test_plan_quiet () =
  Alcotest.(check bool) "none is quiet" true (Plan.is_quiet Plan.none);
  let p = Plan.scenario ~seed:3 ~replicas:2 ~horizon:10. () in
  Alcotest.(check bool) "scenario is not quiet" false (Plan.is_quiet p);
  Alcotest.(check int) "one crash by default" 1 (List.length p.Plan.crashes);
  let t, r = List.hd p.Plan.crashes in
  Alcotest.(check bool) "crash inside the middle of the horizon" true
    (t >= 1. && t <= 9.);
  Alcotest.(check bool) "crash on a valid replica" true (r >= 0 && r < 2)

let test_plan_stateless_determinism () =
  let mk () = Plan.make ~step_fail_rate:0.5 ~straggler_rate:0.5 ~seed:17 () in
  let a = mk () and b = mk () in
  for replica = 0 to 3 do
    for step = 0 to 49 do
      Alcotest.(check bool)
        (Printf.sprintf "fail draw (%d,%d) reproducible" replica step)
        (Plan.step_fails a ~replica ~step)
        (Plan.step_fails b ~replica ~step);
      Alcotest.(check (float 0.)) "slowdown draw reproducible"
        (Plan.step_slowdown a ~replica ~step)
        (Plan.step_slowdown b ~replica ~step)
    done
  done;
  (* Draws are keyed on the site, not on evaluation order. *)
  Alcotest.(check bool) "order-independent"
    (Plan.step_fails a ~replica:1 ~step:7)
    (Plan.step_fails a ~replica:1 ~step:7);
  let c = Plan.make ~step_fail_rate:0.5 ~seed:18 () in
  let differs = ref false in
  for step = 0 to 199 do
    if Plan.step_fails a ~replica:0 ~step <> Plan.step_fails c ~replica:0 ~step
    then differs := true
  done;
  Alcotest.(check bool) "different seeds draw differently" true !differs

let test_plan_rate_extremes () =
  let never = Plan.make ~seed:1 () in
  let heavy =
    Plan.make ~step_fail_rate:0.99 ~straggler_rate:1. ~straggler_slowdown:2.5
      ~seed:1 ()
  in
  let fired = ref false in
  for step = 0 to 199 do
    Alcotest.(check bool) "rate 0 never fails" false
      (Plan.step_fails never ~replica:0 ~step);
    Alcotest.(check (float 0.)) "rate 0 never slows" 1.
      (Plan.step_slowdown never ~replica:0 ~step);
    if Plan.step_fails heavy ~replica:0 ~step then fired := true;
    Alcotest.(check (float 0.)) "straggler rate 1 always slows" 2.5
      (Plan.step_slowdown heavy ~replica:0 ~step)
  done;
  Alcotest.(check bool) "a 99% rate fires" true !fired

let test_plan_validates () =
  Alcotest.check_raises "certain step failure rejected"
    (Invalid_argument "Plan: step_fail_rate must be in [0, 1)")
    (fun () -> ignore (Plan.make ~step_fail_rate:1. ~seed:0 ()))

(* --- Retry --- *)

let test_retry_bounds () =
  let p =
    { Retry.max_attempts = 5; base_delay = 0.05; max_delay = 1.0; jitter = 0.5 }
  in
  Retry.validate p;
  for attempt = 1 to 10 do
    let d =
      Float.min p.Retry.max_delay
        (p.Retry.base_delay *. (2. ** float_of_int (attempt - 1)))
    in
    for seed = 0 to 20 do
      let delay = Retry.delay_after p ~seed ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "delay in [d, 1.5d] (seed %d attempt %d)" seed attempt)
        true
        (delay >= d -. 1e-12 && delay <= (d *. 1.5) +. 1e-12)
    done
  done

let test_retry_deterministic () =
  let p = Retry.default in
  Alcotest.(check (float 0.)) "same (seed, attempt) same delay"
    (Retry.delay_after p ~seed:42 ~attempt:2)
    (Retry.delay_after p ~seed:42 ~attempt:2);
  let differs = ref false in
  for seed = 0 to 31 do
    if
      Retry.delay_after p ~seed ~attempt:2
      <> Retry.delay_after p ~seed:999 ~attempt:2
    then differs := true
  done;
  Alcotest.(check bool) "jitter varies with the seed" true !differs

let test_retry_no_jitter_is_exact () =
  let p =
    { Retry.max_attempts = 3; base_delay = 0.1; max_delay = 1.0; jitter = 0. }
  in
  Alcotest.(check (float 1e-12)) "attempt 1" 0.1
    (Retry.delay_after p ~seed:5 ~attempt:1);
  Alcotest.(check (float 1e-12)) "attempt 2 doubles" 0.2
    (Retry.delay_after p ~seed:5 ~attempt:2);
  Alcotest.(check (float 1e-12)) "capped at max_delay" 1.0
    (Retry.delay_after p ~seed:5 ~attempt:9)

let test_retry_validates () =
  Alcotest.check_raises "zero attempts rejected"
    (Invalid_argument "Retry: max_attempts must be >= 1") (fun () ->
      Retry.validate { Retry.default with max_attempts = 0 })

(* --- Breaker --- *)

let test_breaker_trip_halfopen_recover () =
  let b =
    Breaker.create ~policy:{ Breaker.failure_threshold = 3; cooldown = 10. } ()
  in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b ~now:0.);
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:1.;
  Alcotest.(check bool) "still closed below threshold" true
    (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now:2.;
  Alcotest.(check bool) "opens at threshold" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open rejects before cooldown" false
    (Breaker.allow b ~now:5.);
  Alcotest.(check bool) "probes after cooldown" true (Breaker.allow b ~now:12.5);
  Alcotest.(check bool) "half-open after the probe" true
    (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b = Breaker.Closed);
  let s = Breaker.stats b in
  Alcotest.(check int) "one trip" 1 s.Breaker.trips;
  Alcotest.(check int) "one probe" 1 s.Breaker.probes

let test_breaker_halfopen_failure_reopens () =
  let b =
    Breaker.create ~policy:{ Breaker.failure_threshold = 2; cooldown = 5. } ()
  in
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:0.;
  Alcotest.(check bool) "open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "probe allowed" true (Breaker.allow b ~now:6.);
  Breaker.record_failure b ~now:6.;
  Alcotest.(check bool) "probe failure reopens" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "rejects during the new cooldown" false
    (Breaker.allow b ~now:10.);
  Alcotest.(check int) "two trips" 2 (Breaker.stats b).Breaker.trips

let test_breaker_success_resets_streak () =
  let b =
    Breaker.create ~policy:{ Breaker.failure_threshold = 3; cooldown = 5. } ()
  in
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:1.;
  Breaker.record_success b;
  Breaker.record_failure b ~now:2.;
  Breaker.record_failure b ~now:3.;
  Alcotest.(check bool) "success interrupted the streak" true
    (Breaker.state b = Breaker.Closed)

(* --- Device --- *)

let test_device_draws () =
  let d =
    Device.make ~launch_fail_rate:0.5 ~max_launch_retries:3 ~straggler_rate:0.5
      ~straggler_slowdown:2. ~seed:9 ()
  in
  let d' =
    Device.make ~launch_fail_rate:0.5 ~max_launch_retries:3 ~straggler_rate:0.5
      ~straggler_slowdown:2. ~seed:9 ()
  in
  let saw_retry = ref false in
  for region = 0 to 63 do
    let r = Device.launch_retries d ~region ~tasks:8 in
    if r > 0 then saw_retry := true;
    Alcotest.(check bool) "retries bounded" true (r >= 0 && r <= 3);
    Alcotest.(check int) "retries reproducible" r
      (Device.launch_retries d' ~region ~tasks:8);
    let f = Device.straggler_factor d ~region ~tasks:8 in
    Alcotest.(check bool) "factor is 1 or the slowdown" true
      (f = 1. || f = 2.)
  done;
  Alcotest.(check bool) "a 50% rate fires somewhere in 64 regions" true
    !saw_retry;
  let quiet = Device.make ~seed:9 () in
  Alcotest.(check int) "rate 0 never retries" 0
    (Device.launch_retries quiet ~region:0 ~tasks:8)

(* --- Corrupt --- *)

let sample_artifact =
  "magic line v1\nhw line\nfingerprint abc\nchecksum 123\nbody one\nbody two\n"

let test_corrupt_modes () =
  List.iter
    (fun mode ->
      let c = Corrupt.apply mode ~seed:4 sample_artifact in
      Alcotest.(check bool)
        (Corrupt.mode_name mode ^ " changes the artifact")
        true (c <> sample_artifact);
      Alcotest.(check string)
        (Corrupt.mode_name mode ^ " is deterministic")
        c
        (Corrupt.apply mode ~seed:4 sample_artifact))
    Corrupt.all_modes;
  Alcotest.(check bool) "truncate shortens" true
    (String.length (Corrupt.apply Corrupt.Truncate ~seed:4 sample_artifact)
    < String.length sample_artifact);
  Alcotest.(check int) "bit flip preserves length"
    (String.length sample_artifact)
    (String.length (Corrupt.apply Corrupt.Bit_flip ~seed:4 sample_artifact))

(* --- Atomic_file --- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write_roundtrip () =
  let path = temp_path "mikpoly_test_atomic.txt" in
  Atomic_file.write ~path (fun oc -> output_string oc "hello\nworld\n");
  Alcotest.(check string) "contents" "hello\nworld\n" (read_file path);
  Alcotest.(check bool) "no stale tempfile" false
    (Sys.file_exists (Atomic_file.temp_path path));
  Sys.remove path

exception Killed

let test_atomic_midwrite_kill () =
  let path = temp_path "mikpoly_test_atomic_kill.txt" in
  Atomic_file.write ~path (fun oc -> output_string oc "original\n");
  (* A writer that dies halfway through: the target must keep its
     previous contents and the tempfile must not survive. *)
  (try
     Atomic_file.write ~path (fun oc ->
         output_string oc "partial";
         raise Killed)
   with Killed -> ());
  Alcotest.(check string) "previous contents survive" "original\n"
    (read_file path);
  Alcotest.(check bool) "tempfile cleaned up" false
    (Sys.file_exists (Atomic_file.temp_path path));
  (* A stale tempfile from a killed process must not poison later saves. *)
  let oc = open_out (Atomic_file.temp_path path) in
  output_string oc "stale garbage";
  close_out oc;
  Atomic_file.write ~path (fun oc -> output_string oc "fresh\n");
  Alcotest.(check string) "fresh write wins over stale temp" "fresh\n"
    (read_file path);
  Sys.remove path

(* --- Store checksums and crash safety --- *)

(* The offline stage is reused across compilers for the same platform,
   so forcing this once keeps every store/ladder test cheap. *)
let gpu_compiler = lazy (Mikpoly_core.Compiler.create gpu)

let tuned_set () = Mikpoly_core.Compiler.kernels (Lazy.force gpu_compiler)

let test_kernel_store_checksum () =
  let config = Mikpoly_core.Config.default gpu in
  let path = temp_path "mikpoly_test_fault_kernels.txt" in
  Mikpoly_core.Kernel_store.save ~path config (tuned_set ());
  (* Corrupt one body byte while leaving the 5-line header intact: only
     the checksum can catch this. *)
  let contents = read_file path in
  let nl = ref 0 and idx = ref 0 in
  String.iteri (fun i c -> if c = '\n' && !nl < 5 then (incr nl; idx := i)) contents;
  let body_pos = !idx + 2 in
  let corrupted = Bytes.of_string contents in
  Bytes.set corrupted body_pos
    (if Bytes.get corrupted body_pos = 'x' then 'y' else 'x');
  let oc = open_out path in
  output_string oc (Bytes.to_string corrupted);
  close_out oc;
  (match Mikpoly_core.Kernel_store.load ~path gpu config with
  | Ok _ -> Alcotest.fail "corrupted body must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the checksum" true
      (String.length e >= 8
      && String.lowercase_ascii e |> fun s ->
         let rec find i =
           i + 8 <= String.length s
           && (String.sub s i 8 = "checksum" || find (i + 1))
         in
         find 0));
  Sys.remove path

let test_kernel_store_survives_stale_temp () =
  let config = Mikpoly_core.Config.default gpu in
  let path = temp_path "mikpoly_test_fault_kernels_tmp.txt" in
  Mikpoly_core.Kernel_store.save ~path config (tuned_set ());
  (* Simulate a mid-write kill of a *later* save: a partial tempfile
     next to an intact artifact. Loading must not even notice. *)
  let oc = open_out (Atomic_file.temp_path path) in
  output_string oc "mikpoly-kernel-set v3\ntruncated mid-wri";
  close_out oc;
  (match Mikpoly_core.Kernel_store.load ~path gpu config with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("intact artifact rejected: " ^ e));
  Sys.remove (Atomic_file.temp_path path);
  Sys.remove path

let test_profile_store_checksum () =
  let path = temp_path "mikpoly_test_fault_profile.cal" in
  let cal =
    Mikpoly_adapt.Calibration.fit
      ~fingerprint:(Mikpoly_accel.Hardware.fingerprint gpu)
      [ ((16, 16, 16), [ (2., 5.) ]) ]
  in
  Mikpoly_adapt.Profile_store.save ~path gpu cal;
  Corrupt.file Corrupt.Bit_flip ~seed:0xBEEF ~path;
  (match Mikpoly_adapt.Profile_store.load ~path gpu with
  | Ok _ -> Alcotest.fail "bit-flipped profile must be rejected"
  | Error _ -> ());
  Sys.remove path

(* --- Degradation ladder --- *)

let compile_one compiler =
  ignore
    (Mikpoly_core.Compiler.compile compiler
       (Mikpoly_ir.Operator.gemm ~m:96 ~n:96 ~k:64 ()))

let test_ladder_full_search_rung () =
  let compiler = Mikpoly_core.Compiler.create gpu in
  compile_one compiler;
  let s = Mikpoly_core.Compiler.ladder_stats compiler in
  Alcotest.(check int) "full search" 1 s.Mikpoly_core.Compiler.full_search;
  Alcotest.(check int) "no safe-generic" 0 s.Mikpoly_core.Compiler.safe_generic;
  Alcotest.(check bool) "not in safe mode" false
    (Mikpoly_core.Compiler.safe_mode compiler)

let test_ladder_best_effort_rung () =
  (* Analytic pruning off so the tiny budget is actually exceeded — with
     it on, this shape's search fits the quota and stays on Full_search. *)
  let config =
    {
      (Mikpoly_core.Config.default gpu) with
      search_deadline_ms = 1e-3;
      analytic_prune = false;
    }
  in
  let compiler = Mikpoly_core.Compiler.create ~config gpu in
  let c =
    Mikpoly_core.Compiler.compile compiler
      (Mikpoly_ir.Operator.gemm ~m:96 ~n:96 ~k:64 ())
  in
  Alcotest.(check bool) "deadline hit" true c.Mikpoly_core.Polymerize.deadline_hit;
  let s = Mikpoly_core.Compiler.ladder_stats compiler in
  Alcotest.(check int) "best effort" 1 s.Mikpoly_core.Compiler.best_effort;
  Alcotest.(check int) "not full search" 0 s.Mikpoly_core.Compiler.full_search

let test_ladder_rung_per_corruption_mode () =
  let config = Mikpoly_core.Config.default gpu in
  List.iter
    (fun mode ->
      let path = temp_path "mikpoly_test_fault_ladder.txt" in
      Mikpoly_core.Kernel_store.save ~path config (tuned_set ());
      Corrupt.file mode ~seed:0xC0 ~path;
      let compiler, reason =
        Mikpoly_core.Compiler.create_resilient ~store_path:path gpu
      in
      Alcotest.(check bool)
        (Corrupt.mode_name mode ^ " rejected")
        true (reason <> None);
      Alcotest.(check bool)
        (Corrupt.mode_name mode ^ " puts the compiler in safe mode")
        true
        (Mikpoly_core.Compiler.safe_mode compiler);
      compile_one compiler;
      let s = Mikpoly_core.Compiler.ladder_stats compiler in
      Alcotest.(check int)
        (Corrupt.mode_name mode ^ " compiles on the safe-generic rung")
        1 s.Mikpoly_core.Compiler.safe_generic;
      Sys.remove path)
    Corrupt.all_modes

let test_ladder_intact_and_missing_store () =
  let config = Mikpoly_core.Config.default gpu in
  let path = temp_path "mikpoly_test_fault_ladder_ok.txt" in
  Mikpoly_core.Kernel_store.save ~path config (tuned_set ());
  let compiler, reason =
    Mikpoly_core.Compiler.create_resilient ~store_path:path gpu
  in
  Alcotest.(check bool) "intact store accepted" true (reason = None);
  Alcotest.(check bool) "normal mode" false
    (Mikpoly_core.Compiler.safe_mode compiler);
  compile_one compiler;
  Alcotest.(check int) "full-search rung" 1
    (Mikpoly_core.Compiler.ladder_stats compiler).Mikpoly_core.Compiler
      .full_search;
  Sys.remove path;
  let compiler, reason =
    Mikpoly_core.Compiler.create_resilient ~store_path:path gpu
  in
  Alcotest.(check bool) "missing store reported" true (reason <> None);
  Alcotest.(check bool) "missing store means safe mode" true
    (Mikpoly_core.Compiler.safe_mode compiler)

(* --- Chaos scheduler --- *)

open Mikpoly_serve

let chaos_requests () =
  Request.poisson ~seed:3 ~rate:50. ~count:30 ~max_prompt:32 ~max_output:6 ()

let chaos_config =
  {
    Scheduler.replicas = 2;
    batcher = Batcher.Greedy { max_batch = 8 };
    bucketing = Bucketing.Aligned 4;
    cache_capacity = 16;
  }

let fast_retry =
  {
    Scheduler.retry =
      {
        Retry.max_attempts = 4;
        base_delay = 1e-3;
        max_delay = 20e-3;
        jitter = 0.25;
      };
    attempt_timeout = infinity;
    max_queue = 0;
    shed = `Reject_new;
  }

let test_chaos_conservation_and_reproducibility () =
  let requests = chaos_requests () in
  let faults = Plan.scenario ~seed:11 ~replicas:2 ~horizon:1.0 () in
  let engine = Scheduler.synthetic_engine () in
  let arm jobs =
    Resilience.run_arm ~jobs ~arm_name:"t" ~faults
      ~resilience:(Some fast_retry) chaos_config engine requests
  in
  let a = arm 1 and b = arm 1 and c = arm 4 in
  Alcotest.(check bool) "faults were injected" true (a.Resilience.injected_faults > 0);
  Alcotest.(check int) "no silent losses" 0 a.Resilience.silent_losses;
  Alcotest.(check string) "bit-identical across runs" a.Resilience.status_digest
    b.Resilience.status_digest;
  Alcotest.(check string) "bit-identical across job counts"
    a.Resilience.status_digest c.Resilience.status_digest

let test_chaos_without_resilience_is_loud () =
  let requests = chaos_requests () in
  let faults = Plan.make ~step_fail_rate:0.5 ~seed:5 () in
  let engine = Scheduler.synthetic_engine () in
  let o = Scheduler.run ~faults chaos_config engine requests in
  let statuses = Scheduler.statuses o in
  Alcotest.(check int) "every request has a terminal status"
    (List.length requests) (List.length statuses);
  Alcotest.(check bool) "failures are recorded, not dropped" true
    (o.Scheduler.failed <> []);
  List.iter
    (fun (_, why) ->
      Alcotest.(check bool) "failure carries a reason" true
        (String.length why > 0))
    o.Scheduler.failed;
  Alcotest.(check int) "no retries without resilience" 0 o.Scheduler.retries

let test_chaos_resilience_recovers () =
  let requests = chaos_requests () in
  let faults = Plan.make ~step_fail_rate:0.3 ~seed:5 () in
  let engine = Scheduler.synthetic_engine () in
  let without = Scheduler.run ~faults chaos_config engine requests in
  let with_r =
    Scheduler.run ~faults ~resilience:fast_retry chaos_config engine requests
  in
  Alcotest.(check bool) "the unprotected arm loses requests" true
    (List.length without.Scheduler.completed < List.length requests);
  Alcotest.(check bool) "resilience completes more" true
    (List.length with_r.Scheduler.completed
    > List.length without.Scheduler.completed);
  Alcotest.(check bool) "retries were spent" true (with_r.Scheduler.retries > 0)

let test_attempt_timeout () =
  let requests =
    [
      {
        Request.id = 0;
        arrival = 0.;
        prompt_len = 4;
        output_len = 2;
        slo = { Request.ttft = 10.; e2e = 10. };
      };
    ]
  in
  let engine = Scheduler.synthetic_engine ~base:0.2 () in
  let resilience =
    {
      fast_retry with
      Scheduler.attempt_timeout = 0.05;
      retry = { fast_retry.Scheduler.retry with Retry.max_attempts = 1 };
    }
  in
  let o =
    Scheduler.run ~resilience
      { chaos_config with Scheduler.replicas = 1 }
      engine requests
  in
  Alcotest.(check int) "request timed out" 1 (List.length o.Scheduler.timed_out);
  Alcotest.(check int) "nothing completed" 0 (List.length o.Scheduler.completed)

let test_load_shedding () =
  let requests =
    List.init 10 (fun id ->
        {
          Request.id;
          arrival = 0.;
          prompt_len = 4;
          output_len = 2;
          slo = { Request.ttft = 10.; e2e = 10. };
        })
  in
  let engine = Scheduler.synthetic_engine () in
  let config = { chaos_config with Scheduler.replicas = 1 } in
  let run shed =
    Scheduler.run
      ~resilience:{ fast_retry with Scheduler.max_queue = 3; shed }
      config engine requests
  in
  let reject = run `Reject_new and drop = run `Drop_oldest in
  Alcotest.(check int) "reject-new sheds the overflow" 7
    (List.length reject.Scheduler.rejected);
  Alcotest.(check int) "reject-new completes the queue bound" 3
    (List.length reject.Scheduler.completed);
  Alcotest.(check int) "drop-oldest sheds as many" 7
    (List.length drop.Scheduler.rejected);
  let completed_ids =
    List.sort compare
      (List.map
         (fun (c : Scheduler.completed) -> c.Scheduler.request.Request.id)
         drop.Scheduler.completed)
  in
  Alcotest.(check (list int)) "drop-oldest keeps the youngest arrivals"
    [ 7; 8; 9 ] completed_ids

let test_crash_requeue () =
  let requests =
    List.init 4 (fun id ->
        {
          Request.id;
          arrival = 0.;
          prompt_len = 8;
          output_len = 64;
          slo = { Request.ttft = 60.; e2e = 60. };
        })
  in
  (* Decoding 64 tokens takes tens of steps at >= 2 ms each, so a crash
     at 10 ms is guaranteed to land mid-flight. *)
  let faults = Plan.make ~crashes:[ (0.01, 0) ] ~restart_delay:0.1 ~seed:1 () in
  let engine = Scheduler.synthetic_engine () in
  let config = { chaos_config with Scheduler.replicas = 1 } in
  let without = Scheduler.run ~faults config engine requests in
  Alcotest.(check int) "one crash fired" 1 without.Scheduler.crashes;
  Alcotest.(check bool) "unprotected crash loses the in-flight work" true
    (without.Scheduler.failed <> []);
  let with_r = Scheduler.run ~faults ~resilience:fast_retry config engine requests in
  Alcotest.(check int) "resilient crash still fires" 1 with_r.Scheduler.crashes;
  Alcotest.(check int) "every request completes after the requeue" 4
    (List.length with_r.Scheduler.completed);
  Alcotest.(check bool) "the requeue counts as retries" true
    (with_r.Scheduler.retries > 0)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "none quiet, scenario seeded" `Quick test_plan_quiet;
          Alcotest.test_case "stateless determinism" `Quick
            test_plan_stateless_determinism;
          Alcotest.test_case "rate extremes" `Quick test_plan_rate_extremes;
          Alcotest.test_case "validates rates" `Quick test_plan_validates;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff and jitter bounds" `Quick test_retry_bounds;
          Alcotest.test_case "deterministic per seed" `Quick
            test_retry_deterministic;
          Alcotest.test_case "no jitter is exact" `Quick
            test_retry_no_jitter_is_exact;
          Alcotest.test_case "validates" `Quick test_retry_validates;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip, half-open, recover" `Quick
            test_breaker_trip_halfopen_recover;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_failure_reopens;
          Alcotest.test_case "success resets the streak" `Quick
            test_breaker_success_resets_streak;
        ] );
      ( "device",
        [ Alcotest.test_case "bounded seeded draws" `Quick test_device_draws ] );
      ( "corrupt",
        [ Alcotest.test_case "all modes, deterministic" `Quick test_corrupt_modes ] );
      ( "atomic file",
        [
          Alcotest.test_case "roundtrip" `Quick test_atomic_write_roundtrip;
          Alcotest.test_case "mid-write kill" `Quick test_atomic_midwrite_kill;
        ] );
      ( "stores",
        [
          Alcotest.test_case "kernel store checksum" `Quick
            test_kernel_store_checksum;
          Alcotest.test_case "kernel store ignores stale temp" `Quick
            test_kernel_store_survives_stale_temp;
          Alcotest.test_case "profile store checksum" `Quick
            test_profile_store_checksum;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "full-search rung" `Quick
            test_ladder_full_search_rung;
          Alcotest.test_case "best-effort rung under deadline" `Quick
            test_ladder_best_effort_rung;
          Alcotest.test_case "safe-generic rung per corruption mode" `Quick
            test_ladder_rung_per_corruption_mode;
          Alcotest.test_case "intact and missing stores" `Quick
            test_ladder_intact_and_missing_store;
        ] );
      ( "chaos scheduler",
        [
          Alcotest.test_case "conservation and reproducibility" `Quick
            test_chaos_conservation_and_reproducibility;
          Alcotest.test_case "unprotected losses are loud" `Quick
            test_chaos_without_resilience_is_loud;
          Alcotest.test_case "resilience recovers" `Quick
            test_chaos_resilience_recovers;
          Alcotest.test_case "attempt timeout" `Quick test_attempt_timeout;
          Alcotest.test_case "load shedding" `Quick test_load_shedding;
          Alcotest.test_case "crash requeue" `Quick test_crash_requeue;
        ] );
    ]
