(* Tests for the learned candidate-ranking subsystem: feature-schema
   identity, model fitting determinism and serialization round-trips,
   dataset harvesting through the observer hook, artifact-store negative
   paths (every corruption mode must come back as [Error], never an
   exception, so the caller falls back to calibrated Eq. 2), and the
   ordering-soundness invariant — an un-truncated search's program is
   bit-identical with the ranker on or off. *)

open Mikpoly_rank
module Hardware = Mikpoly_accel.Hardware
module Compiler = Mikpoly_core.Compiler
module Polymerize = Mikpoly_core.Polymerize
module Config = Mikpoly_core.Config
module Operator = Mikpoly_ir.Operator
module Program = Mikpoly_ir.Program

let gpu = Hardware.a100

let gpu_compiler = lazy (Compiler.create gpu)

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let train_shapes = [ (96, 256, 128); (512, 192, 320); (768, 640, 96) ]

let trained =
  lazy
    (let compiler = Lazy.force gpu_compiler in
     let examples = Dataset.harvest ~compiler train_shapes in
     (examples, Ranker.train ~rounds:24 ~learning_rate:0.1 ~hw:gpu examples))

(* --- Features --- *)

let test_feature_schema () =
  Alcotest.(check int) "dim matches names" Features.dim
    (Array.length Features.names);
  Alcotest.(check bool) "shape prefix is a proper prefix" true
    (Features.shape_dim > 0 && Features.shape_dim < Features.dim);
  (* The schema id commits to the exact feature list: it embeds the
     version and a digest of the comma-joined names. *)
  let expected =
    Printf.sprintf "rank-fs-v%d-%s" Features.schema_version
      (Mikpoly_util.Checksum.fnv1a64_hex
         (String.concat "," (Array.to_list Features.names)))
  in
  Alcotest.(check string) "schema id" expected Features.schema_id;
  let v =
    Features.of_candidate ~hw:gpu ~m:777 ~n:1234 ~k:555 ~um:64 ~un:64 ~uk:64
      ~wave_capacity:108 ~n_tasks:260 ~pipe:12.5
  in
  Alcotest.(check int) "vector length" Features.dim (Array.length v);
  Array.iteri
    (fun i x ->
      if Float.is_nan x then
        Alcotest.failf "feature %s is NaN" Features.names.(i))
    v

(* --- Model --- *)

let test_model_fit_deterministic () =
  let n = 64 in
  let features =
    Array.init n (fun i ->
        [| float_of_int (i mod 7); float_of_int (i mod 11); float_of_int i |])
  in
  let targets =
    Array.init n (fun i -> sin (float_of_int i) +. (0.1 *. float_of_int (i mod 5)))
  in
  let fit () = Model.fit ~rounds:32 ~learning_rate:0.2 ~features ~targets () in
  Alcotest.(check bool) "same data, same model" true (Model.equal (fit ()) (fit ()));
  let m = fit () in
  let round_tripped = Model.of_string (Model.to_string m) in
  Alcotest.(check bool) "serialize/parse round-trip" true
    (Model.equal m round_tripped);
  Alcotest.(check string) "byte-stable reserialization"
    (Model.to_string m)
    (Model.to_string round_tripped)

let test_model_reduces_training_error () =
  let n = 128 in
  let features =
    Array.init n (fun i -> [| float_of_int (i mod 16); float_of_int (i / 16) |])
  in
  let targets =
    Array.init n (fun i -> if i mod 16 < 8 then 1.0 else -1.0)
  in
  let sse m =
    let s = ref 0. in
    Array.iteri
      (fun i x ->
        let d = targets.(i) -. Model.predict m x in
        s := !s +. (d *. d))
      features;
    !s
  in
  let m0 = Model.fit ~rounds:0 ~features ~targets () in
  let m = Model.fit ~rounds:48 ~features ~targets () in
  Alcotest.(check bool) "boosting reduces SSE" true (sse m < 0.1 *. sse m0)

(* --- Dataset --- *)

let test_harvest_shapes_and_cleanup () =
  let compiler = Lazy.force gpu_compiler in
  let examples, _ = Lazy.force trained in
  let set = Compiler.kernels compiler in
  Alcotest.(check int) "one example per shape x kernel"
    (List.length train_shapes * Array.length set.entries)
    (List.length examples);
  List.iter
    (fun (e : Dataset.example) ->
      Alcotest.(check int) "feature dim" Features.dim
        (Array.length e.ex_features);
      Alcotest.(check bool) "positive observed" true (e.ex_observed > 0.);
      Alcotest.(check bool) "positive raw" true (e.ex_raw > 0.))
    examples;
  (* The observer hook must be cleared afterwards: a fresh simulate on
     the same compiler must not grow anyone's accumulator, which we can
     only check indirectly — installing our own observer still works and
     sees exactly our own traffic. *)
  let count = ref 0 in
  Compiler.set_observer compiler (Some (fun _ -> incr count));
  let c = Compiler.compile compiler (Operator.gemm ~m:96 ~n:256 ~k:128 ()) in
  ignore (Compiler.simulate_observed compiler c);
  Compiler.set_observer compiler None;
  Alcotest.(check int) "observer sees one compile's observation" 1 !count

let test_sample_shapes_deterministic () =
  let a = Dataset.sample_shapes ~seed:42 ~count:12 in
  let b = Dataset.sample_shapes ~seed:42 ~count:12 in
  Alcotest.(check bool) "same seed, same shapes" true (a = b);
  let sorted = List.sort_uniq compare a in
  Alcotest.(check int) "distinct shapes" (List.length a) (List.length sorted);
  List.iter
    (fun (m, n, k) ->
      let ok = m >= 64 && m <= 2048 && n >= 64 && n <= 2048 && k >= 64 && k <= 1024 in
      Alcotest.(check bool) "in range" true ok)
    a

(* --- Artifact store: round-trip and every negative path --- *)

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let check_rejected name path =
  match Ranker.load ~path ~hw:gpu with
  | Ok _ -> Alcotest.failf "%s: load accepted a corrupt artifact" name
  | Error msg ->
    Alcotest.(check bool)
      (name ^ ": error message non-empty")
      true
      (String.length msg > 0)

let test_store_roundtrip () =
  let _, ranker = Lazy.force trained in
  let path = temp_path "mikpoly_test_rank.model" in
  Ranker.save ~path ranker;
  (match Ranker.load ~path ~hw:gpu with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok r ->
    Alcotest.(check bool) "model round-trips" true
      (Model.equal (Ranker.model ranker) (Ranker.model r));
    (* The reloaded ranker must score identically. *)
    let score r =
      Ranker.score r ~m:777 ~n:1234 ~k:555 ~um:64 ~un:64 ~uk:64
        ~wave_capacity:108 ~n_tasks:260 ~pipe:12.5
    in
    Alcotest.(check (float 0.)) "same score" (score ranker) (score r));
  Sys.remove path

let test_store_negative_paths () =
  let _, ranker = Lazy.force trained in
  let path = temp_path "mikpoly_test_rank_bad.model" in
  Ranker.save ~path ranker;
  let good = read_lines path in
  let rewrite f = write_lines path (f good) in
  (* Truncated: header only, body gone. *)
  rewrite (fun lines -> List.filteri (fun i _ -> i < 3) lines);
  check_rejected "truncated" path;
  (* Unrecognized magic. *)
  rewrite (function _ :: rest -> "not-a-ranker v9" :: rest | [] -> []);
  check_rejected "bad magic" path;
  (* Wrong platform: artifact written for the GPU, loaded as such, but
     the header names another device. *)
  rewrite (function
    | magic :: _ :: rest -> magic :: ("hw " ^ Hardware.v100.Hardware.name) :: rest
    | l -> l);
  check_rejected "wrong platform" path;
  (* Wrong fingerprint. *)
  rewrite (function
    | magic :: hw :: _ :: rest -> magic :: hw :: "fingerprint bogus" :: rest
    | l -> l);
  check_rejected "wrong fingerprint" path;
  (* Wrong feature schema. *)
  rewrite (function
    | magic :: hw :: fp :: _ :: rest ->
      magic :: hw :: fp :: "schema rank-fs-v999-dead" :: rest
    | l -> l);
  check_rejected "wrong schema" path;
  (* Checksum mismatch: tamper with one body line, keep the header. *)
  rewrite (fun lines ->
      List.mapi
        (fun i l -> if i = List.length lines - 1 then l ^ " tampered" else l)
        lines);
  check_rejected "checksum mismatch" path;
  (* A model trained on one platform must not load on another even with
     an intact file. *)
  rewrite (fun _ -> good);
  (match Ranker.load ~path ~hw:Hardware.ascend910 with
  | Ok _ -> Alcotest.fail "GPU artifact loaded for the NPU"
  | Error _ -> ());
  (* And the genuine artifact still loads — the rewrites above did not
     damage the reference copy. *)
  (match Ranker.load ~path ~hw:gpu with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine artifact rejected: %s" e);
  Sys.remove path

let test_load_missing_file () =
  match Ranker.load ~path:(temp_path "mikpoly_no_such_rank.model") ~hw:gpu with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

(* --- Ordering soundness: ranker on/off bit-identity, fewer first-hits --- *)

let test_ranker_never_changes_program () =
  let compiler = Lazy.force gpu_compiler in
  let _, ranker = Lazy.force trained in
  let set = Compiler.kernels compiler in
  let cfg_plain =
    { (Compiler.config compiler) with Config.search_deadline_ms = 0. }
  in
  let cfg_rank =
    { cfg_plain with Config.ranker = Some (Ranker.config_ranker ranker) }
  in
  List.iter
    (fun (m, n, k) ->
      let op = Operator.gemm ~m ~n ~k () in
      let plain = Polymerize.polymerize ~instrument:false set cfg_plain op in
      let ranked = Polymerize.polymerize ~instrument:false set cfg_rank op in
      Alcotest.(check string) "bit-identical program"
        (Program.to_string plain.Polymerize.program)
        (Program.to_string ranked.Polymerize.program);
      Alcotest.(check (float 0.)) "same predicted cost"
        plain.Polymerize.predicted_cost ranked.Polymerize.predicted_cost;
      Alcotest.(check bool) "first-hit within candidate count" true
        (ranked.Polymerize.first_hit >= 1
        && ranked.Polymerize.first_hit <= ranked.Polymerize.candidates))
    [ (777, 1234, 555); (96, 256, 128); (2048, 64, 512) ]

let test_warm_start_produces_usable_ranker () =
  let _, ranker = Lazy.force trained in
  let npu = Hardware.ascend910 in
  let npu_compiler = Compiler.create npu in
  let examples = Dataset.harvest ~compiler:npu_compiler [ (256, 384, 192) ] in
  let warm =
    Ranker.warm_start ~rounds:8 ~learning_rate:0.1 ~base:ranker ~hw:npu
      examples
  in
  let s =
    Ranker.score warm ~m:777 ~n:1234 ~k:555 ~um:32 ~un:32 ~uk:32
      ~wave_capacity:32 ~n_tasks:950 ~pipe:8.
  in
  Alcotest.(check bool) "positive finite score" true
    (s > 0. && Float.is_finite s)

let () =
  Alcotest.run "rank"
    [
      ( "features",
        [ Alcotest.test_case "schema identity" `Quick test_feature_schema ] );
      ( "model",
        [
          Alcotest.test_case "fit deterministic + round-trip" `Quick
            test_model_fit_deterministic;
          Alcotest.test_case "boosting reduces SSE" `Quick
            test_model_reduces_training_error;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "harvest covers shapes x kernels" `Quick
            test_harvest_shapes_and_cleanup;
          Alcotest.test_case "sampled shapes deterministic" `Quick
            test_sample_shapes_deterministic;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "rejects every corruption mode" `Quick
            test_store_negative_paths;
          Alcotest.test_case "missing file is an Error" `Quick
            test_load_missing_file;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "ranker never changes the program" `Quick
            test_ranker_never_changes_program;
          Alcotest.test_case "warm start yields a usable ranker" `Quick
            test_warm_start_produces_usable_ranker;
        ] );
    ]
