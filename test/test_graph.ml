(* Tests for the whole-model graph subsystem: DAG construction, shape
   binding, rewrite-pass legality, memory planning and the pipelined
   executor's accounting identities. *)

open Mikpoly_graph
open Mikpoly_workloads

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let shape3 = Alcotest.(triple int int int)

(* --- Symdim --- *)

let test_symdim_eval () =
  Alcotest.(check (result int string))
    "const" (Ok 7)
    (Symdim.eval [] (Symdim.const 7));
  Alcotest.(check (result int string))
    "sym" (Ok 64)
    (Symdim.eval [ ("seq", 64) ] (Symdim.sym "seq"));
  (match Symdim.eval [] (Symdim.sym "seq") with
  | Error e -> Alcotest.(check bool) "unbound" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unbound symbol evaluated");
  (match Symdim.eval [ ("seq", 0) ] (Symdim.sym "seq") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive binding evaluated");
  Alcotest.check_raises "bad const"
    (Invalid_argument "Symdim.const: dimension must be >= 1") (fun () ->
      ignore (Symdim.const 0))

(* --- Builder --- *)

let test_builder_rejects_duplicate_label () =
  let b = Dag.builder ~name:"dup" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 4 ] in
  ignore (Dag.elemwise b ~label:"y" ~ew:"relu" [ x ]);
  Alcotest.check_raises "dup" (Invalid_argument "Dag: duplicate label \"y\"")
    (fun () -> ignore (Dag.elemwise b ~label:"y" ~ew:"relu" [ x ]))

let test_finish_requires_outputs () =
  let b = Dag.builder ~name:"empty" in
  ignore (Dag.input b ~label:"x" ~dims:[ Symdim.const 4 ]);
  try
    ignore (Dag.finish b);
    Alcotest.fail "finished a graph with no outputs"
  with Invalid_argument _ -> ()

(* --- Shape inference --- *)

let bert = Mikpoly_nn.Transformer.bert_base

let test_bind_matches_flat_transformer () =
  let graph_shapes =
    Model_shapes.graph_shapes (Model_graphs.transformer bert)
      ~envs:[ [ ("seq", 64) ]; [ ("seq", 128) ] ]
  in
  let flat = Model_shapes.transformer_shapes bert ~seq_lens:[ 64; 128 ] in
  Alcotest.(check (list shape3)) "same shape inventory" flat graph_shapes

let test_bind_matches_flat_cnn () =
  let graph_shapes =
    Model_shapes.graph_shapes (Model_graphs.resnet18 ())
      ~envs:[ [ ("batch", 2); ("res", 64) ] ]
  in
  let flat =
    Model_shapes.cnn_shapes Mikpoly_nn.Cnn.resnet18 ~configs:[ (2, 64) ]
  in
  Alcotest.(check (list shape3)) "same shape inventory" flat graph_shapes

let test_bind_matches_flat_llama () =
  let graph_shapes =
    Model_shapes.graph_shapes (Model_graphs.llama_decode ())
      ~envs:[ [ ("tokens", 8); ("kv", 512) ] ]
  in
  let flat = Model_shapes.llama_shapes ~token_counts:[ 8 ] in
  Alcotest.(check (list shape3)) "same shape inventory" flat graph_shapes

let test_bind_reports_contraction_mismatch () =
  let b = Dag.builder ~name:"bad" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.sym "s"; Symdim.const 8 ] in
  let w = Dag.weight b ~label:"w" ~dims:[ 16; 4 ] in
  ignore (Dag.gemm b ~label:"g" x w);
  let g = Dag.finish b in
  match Infer.bind g ~env:[ ("s", 2) ] with
  | Error e ->
    Alcotest.(check bool) "names mismatch" true
      (contains ~sub:"contraction mismatch" e);
    Alcotest.(check bool) "names node" true
      (contains ~sub:"\"g\"" e)
  | Ok _ -> Alcotest.fail "bound a mismatched contraction"

let test_bind_reports_unbound_symbol () =
  match Infer.bind (Model_graphs.transformer bert) ~env:[] with
  | Error e ->
    Alcotest.(check bool) "names symbol" true
      (contains ~sub:"\"seq\"" e)
  | Ok _ -> Alcotest.fail "bound with an empty environment"

let test_shape_launches_counts_instances () =
  (* seq 128 keeps the score shape distinct from the context GEMMs
     (at seq = head_dim the two coincide) *)
  let bound =
    Infer.bind_exn (Model_graphs.transformer bert) ~env:[ ("seq", 128) ]
  in
  let hd = bert.hidden / bert.heads in
  let launches = Infer.shape_launches bound in
  Alcotest.(check int) "scores launch once per head per layer"
    (bert.heads * bert.layers)
    (List.assoc (128, 128, hd) launches)

(* --- Rewrite passes --- *)

let rewritten dag = Rewrite.run dag

let test_rewrite_shrinks_bert () =
  let dag = Model_graphs.transformer bert in
  let fused, stats = rewritten dag in
  (* per layer: qkv, batched scores (+softmax), batched ctx, concat,
     proj (+residual), ffn_up (+gelu), ffn_down (+residual) = 7 device
     ops, plus the embedding. *)
  Alcotest.(check int) "ops before" ((33 * bert.layers) + 1) (Dag.op_count dag);
  Alcotest.(check int) "ops after" ((7 * bert.layers) + 1) (Dag.op_count fused);
  Alcotest.(check bool) "renamed" true
    (contains ~sub:"+fused" fused.Dag.name);
  let rewrites name =
    let s = List.find (fun (s : Rewrite.stats) -> s.pass_name = name) stats in
    s.rewrites
  in
  Alcotest.(check int) "merges" (2 * (bert.heads - 1) * bert.layers)
    (rewrites "merge_siblings");
  Alcotest.(check int) "epilogues" (4 * bert.layers) (rewrites "fuse_epilogues");
  Alcotest.(check int) "chains" (2 * bert.layers) (rewrites "fuse_gemm_chains")

let test_rewrite_preserves_shape_inventory () =
  let dag = Model_graphs.transformer bert in
  let fused, _ = rewritten dag in
  let envs = [ [ ("seq", 64) ] ] in
  Alcotest.(check (list shape3)) "same shapes"
    (Model_shapes.graph_shapes dag ~envs)
    (Model_shapes.graph_shapes fused ~envs)

let test_merge_requires_single_shared_consumer () =
  let b = Dag.builder ~name:"g" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
  let w = Dag.weight b ~label:"w" ~dims:[ 8; 8 ] in
  let g1 = Dag.gemm b ~label:"g1" x w in
  let g2 = Dag.gemm b ~label:"g2" x w in
  (* g1 and g2 are siblings but feed different consumers *)
  ignore (Dag.elemwise b ~label:"e1" ~ew:"relu" [ g1 ]);
  ignore (Dag.elemwise b ~label:"e2" ~ew:"relu" [ g2 ]);
  let merged, n = (Rewrite.merge_siblings ()).Rewrite.apply (Dag.finish b) in
  Alcotest.(check int) "no merge" 0 n;
  Alcotest.(check int) "ops kept" 4 (Dag.op_count merged)

let test_epilogue_fusion_respects_other_readers () =
  let b = Dag.builder ~name:"g" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
  let w = Dag.weight b ~label:"w" ~dims:[ 8; 8 ] in
  let g1 = Dag.gemm b ~label:"g1" x w in
  let r = Dag.elemwise b ~label:"relu" ~ew:"relu" [ g1 ] in
  (* second reader of g1's value: fusing would lose it *)
  ignore (Dag.elemwise b ~label:"probe" ~ew:"id" [ g1 ]);
  ignore (Dag.elemwise b ~label:"sink" ~ew:"id" [ r ]);
  let fused, n =
    (Rewrite.fuse_epilogues ()).Rewrite.apply (Dag.finish b)
  in
  Alcotest.(check int) "no fusion" 0 n;
  Alcotest.(check int) "ops kept" 4 (Dag.op_count fused)

let test_epilogue_fusion_max_ratio_boundary () =
  let build traffic =
    let b = Dag.builder ~name:"g" in
    let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
    let w = Dag.weight b ~label:"w" ~dims:[ 8; 8 ] in
    let g1 = Dag.gemm b ~label:"g1" x w in
    ignore (Dag.elemwise b ~traffic ~label:"ep" ~ew:"norm" [ g1 ]);
    Dag.finish b
  in
  let _, at = (Rewrite.fuse_epilogues ()).Rewrite.apply (build 4.) in
  Alcotest.(check int) "ratio = max fuses" 1 at;
  let _, over = (Rewrite.fuse_epilogues ()).Rewrite.apply (build 4.25) in
  Alcotest.(check int) "ratio > max kept" 0 over

let test_back_to_back_epilogues_only_first_fuses () =
  let b = Dag.builder ~name:"g" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
  let w = Dag.weight b ~label:"w" ~dims:[ 8; 8 ] in
  let g1 = Dag.gemm b ~label:"g1" x w in
  let r = Dag.elemwise b ~label:"relu" ~ew:"relu" [ g1 ] in
  ignore (Dag.elemwise b ~label:"norm" ~ew:"norm" [ r ]);
  let fused, n = (Rewrite.fuse_epilogues ()).Rewrite.apply (Dag.finish b) in
  Alcotest.(check int) "one fusion" 1 n;
  let g1n = Dag.find fused (Dag.value_id g1) in
  Alcotest.(check (list string)) "relu fused into the gemm" [ "relu" ]
    (List.map (fun fe -> fe.Dag.fe_label) g1n.Dag.fused);
  Alcotest.(check bool) "norm survives" true
    (List.exists (fun (n : Dag.node) -> n.label = "norm") fused.Dag.nodes)

let test_chain_pass_marks_llama_ffn () =
  let fused, stats = rewritten (Model_graphs.llama_decode ()) in
  let chains =
    (List.find (fun (s : Rewrite.stats) -> s.pass_name = "fuse_gemm_chains")
       stats)
      .rewrites
  in
  Alcotest.(check int) "one chain per layer" Mikpoly_nn.Llama.layers chains;
  (* L0.ffn_down chains its silu-fused ffn_up operand *)
  let down =
    List.find (fun (n : Dag.node) -> n.label = "L0.ffn_down") fused.Dag.nodes
  in
  let up =
    List.find (fun (n : Dag.node) -> n.label = "L0.ffn_up") fused.Dag.nodes
  in
  Alcotest.(check (option int)) "chains ffn_up" (Some up.Dag.id) down.Dag.chain

let test_zero_rewrite_keeps_name () =
  let b = Dag.builder ~name:"plain" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
  let w = Dag.weight b ~label:"w" ~dims:[ 8; 8 ] in
  let g1 = Dag.gemm b ~label:"g1" x w in
  ignore (Dag.elemwise b ~traffic:8. ~label:"big" ~ew:"softmax" [ g1 ]);
  let fused, stats = rewritten (Dag.finish b) in
  Alcotest.(check string) "name unchanged" "plain" fused.Dag.name;
  Alcotest.(check bool) "no rewrites" true
    (List.for_all (fun (s : Rewrite.stats) -> s.rewrites = 0) stats)

(* --- Memory planning --- *)

let check_liveness_disjoint bound plan =
  (* independent checker: two values sharing a buffer must have
     disjoint [def, last-use] intervals in the device schedule *)
  let g = Infer.dag bound in
  let devs = Array.of_list (Dag.device_nodes g) in
  let pos = Hashtbl.create 64 in
  Array.iteri (fun i (n : Dag.node) -> Hashtbl.replace pos n.Dag.id i) devs;
  let interval v =
    let def = Hashtbl.find pos v in
    let last = ref def in
    if List.mem v (List.map (Dag.root g) g.Dag.outputs) then
      last := max_int
    else
      Array.iteri
        (fun i (n : Dag.node) ->
          let reads =
            n.Dag.inputs
            @ List.concat_map (fun fe -> fe.Dag.fe_inputs) n.Dag.fused
          in
          if List.exists (fun r -> Dag.root g r = v) reads then
            last := max !last i)
        devs;
    (def, !last)
  in
  let by_buffer = Hashtbl.create 16 in
  List.iter
    (fun (v, buf) ->
      Hashtbl.replace by_buffer buf
        (v :: Option.value (Hashtbl.find_opt by_buffer buf) ~default:[]))
    plan.Memplan.assignments;
  Hashtbl.iter
    (fun _ vs ->
      let ivs = List.map interval vs in
      List.iteri
        (fun i (s1, e1) ->
          List.iteri
            (fun j (s2, e2) ->
              if i < j && not (e1 < s2 || e2 < s1) then
                Alcotest.failf "buffer shared by overlapping liveness")
            ivs)
        ivs)
    by_buffer

let test_memplan_reuses_buffers () =
  let dag, _ = rewritten (Model_graphs.transformer bert) in
  let bound = Infer.bind_exn dag ~env:[ ("seq", 64) ] in
  let plan = Memplan.plan bound in
  Alcotest.(check bool) "planned < naive" true
    (plan.Memplan.planned_bytes < plan.Memplan.naive_bytes);
  Alcotest.(check bool) "peak <= planned" true
    (plan.Memplan.peak_live_bytes <= plan.Memplan.planned_bytes);
  Alcotest.(check bool) "reuse > 0.5" true (Memplan.reuse_ratio plan > 0.5);
  Alcotest.(check int) "every device node assigned"
    (Dag.op_count dag)
    (List.length plan.Memplan.assignments);
  check_liveness_disjoint bound plan

let test_memplan_no_reuse_without_deaths () =
  (* a pure chain where everything is an output never reuses *)
  let b = Dag.builder ~name:"g" in
  let x = Dag.input b ~label:"x" ~dims:[ Symdim.const 8; Symdim.const 8 ] in
  let e1 = Dag.elemwise b ~label:"e1" ~ew:"id" [ x ] in
  let e2 = Dag.elemwise b ~label:"e2" ~ew:"id" [ e1 ] in
  let g = Dag.finish ~outputs:[ e1; e2 ] b in
  let plan = Memplan.plan (Infer.bind_exn g ~env:[]) in
  Alcotest.(check (float 0.)) "no reuse" 0. (Memplan.reuse_ratio plan);
  Alcotest.(check int) "two buffers" 2 (List.length plan.Memplan.buffers)

(* --- Executor --- *)

let bk = Executor.synthetic_backend ()

let close what a b =
  Alcotest.(check (float 1e-9)) what a b

let test_executor_accounting_identities () =
  let dag, _ = rewritten (Model_graphs.transformer bert) in
  let bound = Infer.bind_exn dag ~env:[ ("seq", 64) ] in
  let seq = Executor.execute ~overlap:false bk bound in
  let ovl = Executor.execute bk bound in
  close "seq e2e = exec + compile"
    (seq.Executor.r_exec_seconds +. seq.Executor.r_compile_seconds)
    seq.Executor.r_e2e_seconds;
  close "ovl e2e = exec + stall"
    (ovl.Executor.r_exec_seconds +. ovl.Executor.r_stall_seconds)
    ovl.Executor.r_e2e_seconds;
  close "hidden = compile - stall"
    (ovl.Executor.r_compile_seconds -. ovl.Executor.r_stall_seconds)
    ovl.Executor.r_hidden_seconds;
  Alcotest.(check bool) "overlap strictly faster" true
    (ovl.Executor.r_e2e_seconds < seq.Executor.r_e2e_seconds);
  Alcotest.(check bool) "hides some compile" true
    (ovl.Executor.r_hidden_seconds > 0.);
  close "same exec" seq.Executor.r_exec_seconds ovl.Executor.r_exec_seconds;
  close "same compile" seq.Executor.r_compile_seconds
    ovl.Executor.r_compile_seconds

let test_executor_caches_shapes_within_run () =
  let dag, _ = rewritten (Model_graphs.transformer bert) in
  let bound = Infer.bind_exn dag ~env:[ ("seq", 64) ] in
  let run = Executor.execute bk bound in
  let distinct = List.length (Infer.distinct_shapes bound) in
  Alcotest.(check int) "compiles = distinct shapes" distinct
    run.Executor.r_compiles;
  (* 6 GEMM nodes per layer after rewriting (concat is not a GEMM);
     every layer past the first hits on all its shapes *)
  Alcotest.(check int) "hits = gemm nodes - distinct"
    ((6 * bert.layers) - distinct)
    run.Executor.r_cache_hits

let test_executor_prices_fusion () =
  let dag = Model_graphs.transformer bert in
  let fused, _ = rewritten dag in
  let env = [ ("seq", 64) ] in
  let before = Executor.execute bk (Infer.bind_exn dag ~env) in
  let after = Executor.execute bk (Infer.bind_exn fused ~env) in
  Alcotest.(check bool) "fused graph executes faster" true
    (after.Executor.r_e2e_seconds < before.Executor.r_e2e_seconds);
  Alcotest.(check bool) "fused bytes reported" true
    (after.Executor.r_fused_bytes > 0.);
  Alcotest.(check (float 0.)) "unfused graph saves nothing" 0.
    before.Executor.r_fused_bytes

let () =
  Alcotest.run "graph"
    [
      ( "symdim",
        [
          Alcotest.test_case "eval" `Quick test_symdim_eval;
        ] );
      ( "dag",
        [
          Alcotest.test_case "duplicate label" `Quick
            test_builder_rejects_duplicate_label;
          Alcotest.test_case "outputs required" `Quick
            test_finish_requires_outputs;
        ] );
      ( "infer",
        [
          Alcotest.test_case "bert inventory" `Quick
            test_bind_matches_flat_transformer;
          Alcotest.test_case "resnet inventory" `Quick
            test_bind_matches_flat_cnn;
          Alcotest.test_case "llama inventory" `Quick
            test_bind_matches_flat_llama;
          Alcotest.test_case "contraction mismatch" `Quick
            test_bind_reports_contraction_mismatch;
          Alcotest.test_case "unbound symbol" `Quick
            test_bind_reports_unbound_symbol;
          Alcotest.test_case "shape launches" `Quick
            test_shape_launches_counts_instances;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "shrinks bert" `Quick test_rewrite_shrinks_bert;
          Alcotest.test_case "keeps shapes" `Quick
            test_rewrite_preserves_shape_inventory;
          Alcotest.test_case "merge legality" `Quick
            test_merge_requires_single_shared_consumer;
          Alcotest.test_case "epilogue legality" `Quick
            test_epilogue_fusion_respects_other_readers;
          Alcotest.test_case "max_ratio boundary" `Quick
            test_epilogue_fusion_max_ratio_boundary;
          Alcotest.test_case "back-to-back epilogues" `Quick
            test_back_to_back_epilogues_only_first_fuses;
          Alcotest.test_case "llama chains" `Quick
            test_chain_pass_marks_llama_ffn;
          Alcotest.test_case "zero-rewrite name" `Quick
            test_zero_rewrite_keeps_name;
        ] );
      ( "memplan",
        [
          Alcotest.test_case "reuses buffers" `Quick
            test_memplan_reuses_buffers;
          Alcotest.test_case "outputs pin buffers" `Quick
            test_memplan_no_reuse_without_deaths;
        ] );
      ( "executor",
        [
          Alcotest.test_case "accounting" `Quick
            test_executor_accounting_identities;
          Alcotest.test_case "run cache" `Quick
            test_executor_caches_shapes_within_run;
          Alcotest.test_case "fusion priced" `Quick test_executor_prices_fusion;
        ] );
    ]
