(* Tests for the accelerator model: hardware presets, kernel resource
   model, pipelined-task costs, schedulers and the program simulator —
   including the paper's Section 6 case-study numbers, which the simulator
   must reproduce. *)

open Mikpoly_accel

let qtest = QCheck_alcotest.to_alcotest

let gpu = Hardware.a100

let npu = Hardware.ascend910

let mk ?(eff = 0.88) um un uk = Kernel_desc.make ~codegen_eff:eff ~um ~un ~uk ()

let kernel_a = mk 256 128 32 (* the case study's kernel A *)

let kernel_b = mk 64 64 64 (* the case study's kernel B *)

(* --- Hardware --- *)

let test_hardware_presets () =
  Alcotest.(check int) "A100 SMs" 108 gpu.num_pes;
  Alcotest.(check int) "Ascend cores" 32 npu.num_pes;
  Alcotest.(check bool) "A100 matrix peak ~312 TFLOPS" true
    (abs_float (Hardware.peak_tflops gpu Hardware.Matrix -. 312.) < 5.);
  Alcotest.(check bool) "Ascend matrix peak ~262 TFLOPS" true
    (abs_float (Hardware.peak_tflops npu Hardware.Matrix -. 262.) < 5.);
  Alcotest.(check int) "gpu matrix slots" 8 (Hardware.slots gpu Hardware.Matrix);
  Alcotest.(check int) "npu one task per core" 1 (Hardware.slots npu Hardware.Matrix)

let test_cycles_to_seconds () =
  Alcotest.(check (float 1e-12)) "1 cycle at 1GHz" 1e-9
    (Hardware.cycles_to_seconds npu 1.)

(* --- Kernel_desc --- *)

let test_kernel_desc_validation () =
  Alcotest.check_raises "non multiple of 16"
    (Invalid_argument
       "Kernel_desc.make: tile dimensions must be positive multiples of 16")
    (fun () -> ignore (Kernel_desc.make ~um:17 ~un:16 ~uk:16 ()));
  Alcotest.check_raises "bad eff"
    (Invalid_argument "Kernel_desc.make: codegen_eff must be in (0, 1]")
    (fun () -> ignore (Kernel_desc.make ~codegen_eff:1.5 ~um:16 ~un:16 ~uk:16 ()))

let test_kernel_desc_accounting () =
  Alcotest.(check (float 0.)) "flops" (2. *. 256. *. 128. *. 32.)
    (Kernel_desc.flops kernel_a);
  Alcotest.(check (float 0.)) "load bytes"
    (float_of_int (((256 * 32) + (32 * 128)) * 2))
    (Kernel_desc.load_bytes kernel_a);
  Alcotest.(check (float 0.)) "store bytes"
    (float_of_int (256 * 128 * 2))
    (Kernel_desc.store_bytes kernel_a);
  Alcotest.(check string) "name" "mk256x128x32" (Kernel_desc.name kernel_a)

(* --- Kernel_model: the paper's occupancy figures --- *)

let test_warps_match_paper () =
  (* Section 6: kernel A uses 8 warps (256 threads), kernel B 4 warps. *)
  Alcotest.(check int) "A warps" 8 (Kernel_model.warps gpu kernel_a);
  Alcotest.(check int) "B warps" 4 (Kernel_model.warps gpu kernel_b);
  Alcotest.(check int) "NPU always 1" 1 (Kernel_model.warps npu kernel_a)

let test_blocks_per_pe () =
  (* A: 8 warps of 8 slots -> 1 block/SM (12.5% occupancy). B: 2 blocks. *)
  Alcotest.(check int) "A blocks" 1 (Kernel_model.blocks_per_pe gpu kernel_a);
  Alcotest.(check int) "B blocks" 2 (Kernel_model.blocks_per_pe gpu kernel_b);
  Alcotest.(check int) "A wave capacity" 108 (Kernel_model.wave_capacity gpu kernel_a);
  Alcotest.(check int) "B wave capacity" 216 (Kernel_model.wave_capacity gpu kernel_b)

let test_sched_warps_consistent () =
  List.iter
    (fun (k : Kernel_desc.t) ->
      let blocks = Kernel_model.blocks_per_pe gpu k in
      if blocks >= 1 then
        Alcotest.(check int)
          (Kernel_desc.name k ^ " slots/sched_warps = blocks")
          blocks
          (Hardware.slots gpu k.path / Kernel_model.sched_warps gpu k))
    [ kernel_a; kernel_b; mk 176 64 64; mk 16 16 16; mk 128 128 32 ]

let test_local_bytes_and_fits () =
  let tiny = mk 16 16 16 in
  Alcotest.(check int) "tiny local bytes"
    ((((16 * 16) + (16 * 16)) * 2 * 2) + (16 * 16 * 4))
    (Kernel_model.local_bytes tiny);
  Alcotest.(check bool) "tiny fits" true (Kernel_model.fits gpu tiny);
  let huge = mk 512 512 128 in
  Alcotest.(check bool) "huge does not fit the GPU" false (Kernel_model.fits gpu huge)

let test_shape_eff_monotone () =
  let small = Kernel_model.shape_eff (mk 16 16 16) in
  let large = Kernel_model.shape_eff (mk 256 128 32) in
  Alcotest.(check bool) "larger tiles more efficient" true (large > small);
  Alcotest.(check bool) "bounded by 1" true (large <= 1. && small > 0.)

(* --- Pipeline --- *)

let test_pipeline_formula () =
  let s = Pipeline.step_cycles gpu kernel_a ~active_blocks:108 in
  let t1 = Pipeline.task_cycles gpu kernel_a ~active_blocks:108 ~t_steps:1 in
  let t2 = Pipeline.task_cycles gpu kernel_a ~active_blocks:108 ~t_steps:2 in
  Alcotest.(check (float 1e-6)) "fill + drain"
    (s.load_cycles +. s.compute_cycles +. s.store_cycles)
    t1;
  Alcotest.(check (float 1e-6)) "steady step"
    (max s.load_cycles s.compute_cycles)
    (t2 -. t1)

let test_pipeline_contention () =
  let lone = Pipeline.task_cycles gpu kernel_b ~active_blocks:1 ~t_steps:16 in
  let busy = Pipeline.task_cycles gpu kernel_b ~active_blocks:216 ~t_steps:16 in
  Alcotest.(check bool) "contention slows a task" true (busy > lone)

let prop_pipeline_monotone_in_t =
  QCheck.Test.make ~name:"pipeline: cost increases with t" ~count:50
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      QCheck.assume (lo < hi);
      Pipeline.task_cycles gpu kernel_a ~active_blocks:108 ~t_steps:lo
      < Pipeline.task_cycles gpu kernel_a ~active_blocks:108 ~t_steps:hi)

(* --- Pipeline_sim: the state machine validates the closed form --- *)

let test_pipeline_sim_matches_closed_form () =
  List.iter
    (fun (k, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s t=%d" (Kernel_desc.name k) t)
        true
        (Pipeline_sim.matches_closed_form gpu k ~active_blocks:108 ~t_steps:t))
    [ (kernel_a, 1); (kernel_a, 128); (kernel_b, 64); (mk 16 16 16, 5120) ]

let prop_pipeline_sim_matches_closed_form =
  QCheck.Test.make ~name:"pipeline state machine == closed form" ~count:50
    QCheck.(
      quad (int_range 1 12) (int_range 1 12) (int_range 1 6) (int_range 1 512))
    (fun (tm, tn, tk, t) ->
      let k = mk (16 * tm) (16 * tn) (16 * tk) in
      QCheck.assume (Kernel_model.blocks_per_pe gpu k >= 1);
      Pipeline_sim.matches_closed_form gpu k ~active_blocks:108 ~t_steps:t)

let test_pipeline_sim_stalls () =
  (* A memory-bound kernel stalls the compute engine on every step. *)
  let memory_bound = mk 16 16 64 in
  let r = Pipeline_sim.run gpu memory_bound ~active_blocks:216 ~t_steps:32 in
  Alcotest.(check bool) "stalls when load-bound" true (r.stalls > 0);
  Alcotest.(check bool) "load engine busier" true (r.load_busy > r.compute_busy)

(* --- Sched --- *)

let region ~duration ~warps ~blocks ~count =
  { Sched.duration; warps; blocks_per_pe = blocks; count }

let test_sched_gpu_single_wave () =
  let o =
    Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
      [ region ~duration:100. ~warps:8 ~blocks:1 ~count:96 ]
  in
  Alcotest.(check (float 0.)) "one wave" 100. o.makespan;
  Alcotest.(check (float 0.)) "busy = 96 tasks" 9600. o.busy_pe_cycles

let test_sched_gpu_two_waves () =
  let o =
    Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
      [ region ~duration:100. ~warps:8 ~blocks:1 ~count:128 ]
  in
  Alcotest.(check (float 0.)) "two waves" 200. o.makespan

let test_sched_gpu_multi_block () =
  (* 4-warp tasks, 8 slots: two per PE -> 216 concurrent. *)
  let o =
    Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
      [ region ~duration:50. ~warps:4 ~blocks:2 ~count:216 ]
  in
  Alcotest.(check (float 0.)) "one packed wave" 50. o.makespan

let test_sched_gpu_mixed_fills_gaps () =
  (* 96 large tasks leave 12 idle PEs; small tasks backfill them. *)
  let o =
    Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
      [
        region ~duration:100. ~warps:8 ~blocks:1 ~count:96;
        region ~duration:50. ~warps:4 ~blocks:2 ~count:24;
      ]
  in
  Alcotest.(check (float 0.)) "no extra wave" 100. o.makespan

let test_sched_gpu_analytic_fallback () =
  let count = Sched.event_sim_threshold + 1 in
  let o =
    Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
      [ region ~duration:10. ~warps:8 ~blocks:1 ~count ]
  in
  Alcotest.(check bool) "analytic" false o.exact;
  Alcotest.(check bool) "close to n/capacity * d" true
    (abs_float (o.makespan -. (float_of_int count /. 108. *. 10.)) < 10.)

let test_sched_npu_balance () =
  let o =
    Sched.schedule_npu ~num_pes:32 [ region ~duration:10. ~warps:1 ~blocks:1 ~count:64 ]
  in
  Alcotest.(check (float 0.)) "two per core" 20. o.makespan;
  let o2 =
    Sched.schedule_npu ~num_pes:32 [ region ~duration:10. ~warps:1 ~blocks:1 ~count:65 ]
  in
  Alcotest.(check (float 0.)) "straggler core" 30. o2.makespan

let test_sched_npu_max_min_mixes_durations () =
  (* 32 long + 32 short tasks: max-min pairs one long with one short. *)
  let o =
    Sched.schedule_npu ~num_pes:32
      [
        region ~duration:30. ~warps:1 ~blocks:1 ~count:32;
        region ~duration:10. ~warps:1 ~blocks:1 ~count:32;
      ]
  in
  Alcotest.(check (float 0.)) "paired loads" 40. o.makespan

let test_sched_empty () =
  let o = Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8 [] in
  Alcotest.(check (float 0.)) "empty" 0. o.makespan

let test_sched_rejects_oversized () =
  Alcotest.check_raises "oversized task"
    (Invalid_argument "Sched: task does not fit on a PE") (fun () ->
      ignore
        (Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
           [ region ~duration:1. ~warps:9 ~blocks:1 ~count:1 ]))

let prop_sched_busy_bounded =
  QCheck.Test.make ~name:"sched: busy <= PEs x makespan" ~count:50
    QCheck.(pair (int_range 1 500) (int_range 1 3))
    (fun (count, wexp) ->
      let warps = 1 lsl wexp in
      let o =
        Sched.schedule_gpu ~num_pes:108 ~slot_capacity:8
          [ region ~duration:10. ~warps ~blocks:(8 / warps) ~count ]
      in
      o.busy_pe_cycles <= (108. *. o.makespan) +. 1e-6)

(* --- Simulator: the case study --- *)

let case_load ~m =
  let ceil_div a b = (a + b - 1) / b in
  Load.make
    ~regions:
      [
        Load.region ~kernel:kernel_a
          ~n_tasks:(ceil_div m 256 * ceil_div 1024 128)
          ~t_steps:(4096 / 32);
      ]
    ~footprint_bytes:
      (Load.gemm_footprint_bytes ~dtype:Mikpoly_tensor.Dtype.F16 ~m ~n:1024 ~k:4096)

let test_case_study_sm_efficiency () =
  let r3072 = Simulator.run gpu (case_load ~m:3072) in
  let r4096 = Simulator.run gpu (case_load ~m:4096) in
  (* Paper Table 9: 86.67% and 58.90%. *)
  Alcotest.(check bool) "M=3072 ~ 89%" true
    (abs_float (r3072.sm_efficiency -. 0.889) < 0.02);
  Alcotest.(check bool) "M=4096 ~ 59%" true
    (abs_float (r4096.sm_efficiency -. 0.593) < 0.02);
  Alcotest.(check int) "grid 96" 96 r3072.grid_size;
  Alcotest.(check int) "grid 128" 128 r4096.grid_size;
  Alcotest.(check (float 0.)) "1 wave" 1. r3072.waves;
  Alcotest.(check (float 0.)) "2 waves" 2. r4096.waves

let test_case_study_wave_jump () =
  (* Figure 15a: execution time roughly doubles between M=3328 and 3584. *)
  let t3328 = (Simulator.run gpu (case_load ~m:3328)).seconds in
  let t3584 = (Simulator.run gpu (case_load ~m:3584)).seconds in
  Alcotest.(check bool) "wave quantization jump" true (t3584 /. t3328 > 1.8)

let test_simulator_never_beats_peak () =
  let r = Simulator.run gpu (case_load ~m:4096) in
  let useful = 2. *. 4096. *. 1024. *. 4096. in
  Alcotest.(check bool) "below peak" true
    (Simulator.tflops r ~useful_flops:useful
     < Hardware.peak_tflops gpu Hardware.Matrix)

let prop_simulator_below_peak =
  QCheck.Test.make ~name:"simulator: achieved TFLOPS <= device peak" ~count:40
    QCheck.(triple (int_range 1 64) (int_range 1 64) (int_range 1 64))
    (fun (tm, tn, tk) ->
      let m = 16 * tm and n = 16 * tn and k = 16 * tk in
      let ceil_div a b = (a + b - 1) / b in
      let kd = kernel_b in
      let load =
        Load.make
          ~regions:
            [
              Load.region ~kernel:kd
                ~n_tasks:(ceil_div m kd.um * ceil_div n kd.un)
                ~t_steps:(ceil_div k kd.uk);
            ]
          ~footprint_bytes:
            (Load.gemm_footprint_bytes ~dtype:Mikpoly_tensor.Dtype.F16 ~m ~n ~k)
      in
      let r = Simulator.run gpu load in
      Simulator.tflops r
        ~useful_flops:(2. *. float_of_int m *. float_of_int n *. float_of_int k)
      <= Hardware.peak_tflops gpu Hardware.Matrix +. 1e-9)

let test_simulator_dram_floor () =
  let kd = mk 16 16 64 in
  let load =
    Load.make
      ~regions:[ Load.region ~kernel:kd ~n_tasks:1 ~t_steps:1 ]
      ~footprint_bytes:1e9
  in
  let r = Simulator.run gpu load in
  Alcotest.(check bool) "dram bound" true r.dram_bound;
  Alcotest.(check bool) "cycles >= footprint/bw" true
    (r.cycles >= 1e9 /. gpu.dram_bytes_per_cycle)

let test_simulator_launch_overhead () =
  let kd = kernel_b in
  let one =
    Simulator.run gpu
      (Load.make ~regions:[ Load.region ~kernel:kd ~n_tasks:1 ~t_steps:1 ]
         ~footprint_bytes:0.)
  in
  let two =
    Simulator.run gpu
      (Load.make
         ~regions:
           [
             Load.region ~kernel:kd ~n_tasks:1 ~t_steps:1;
             Load.region ~kernel:kd ~n_tasks:1 ~t_steps:1;
           ]
         ~footprint_bytes:0.)
  in
  Alcotest.(check bool) "second region costs a launch" true
    (two.seconds > one.seconds)

let test_simulator_rejects_misfit () =
  let huge = mk 512 512 128 in
  Alcotest.check_raises "does not fit" (Simulator.Kernel_does_not_fit "mk512x512x128")
    (fun () ->
      ignore
        (Simulator.run gpu
           (Load.make ~regions:[ Load.region ~kernel:huge ~n_tasks:1 ~t_steps:1 ]
              ~footprint_bytes:0.)))

let test_simulator_mixed_paths_rejected () =
  let a = mk 64 64 64 in
  let b = Kernel_desc.make ~path:Hardware.Vector ~um:64 ~un:64 ~uk:64 () in
  Alcotest.check_raises "mixed paths"
    (Invalid_argument "Simulator.run: mixed compute paths in one program")
    (fun () ->
      ignore
        (Simulator.run gpu
           (Load.make
              ~regions:
                [
                  Load.region ~kernel:a ~n_tasks:1 ~t_steps:1;
                  Load.region ~kernel:b ~n_tasks:1 ~t_steps:1;
                ]
              ~footprint_bytes:0.)))

(* --- Roofline --- *)

let test_roofline_gemm_bounds () =
  (* Figure 1's shapes are compute-bound; a rank-1-ish GEMM is not. *)
  let big = Roofline.gemm gpu ~m:4096 ~n:4096 ~k:4096 () in
  Alcotest.(check bool) "4096^3 compute bound" true (big.bound = Roofline.Compute_bound);
  (* Figure 1's slow shape: its roofline ceiling (~150 TFLOPS) is far
     above what cuBLAS achieves (~20 TFLOPS) — the slowness is a
     utilization problem MikPoly can attack, not a bandwidth wall. *)
  let odd = Roofline.gemm gpu ~m:105 ~n:1024 ~k:12544 () in
  Alcotest.(check bool) "(105,1024,12544) ceiling far above observed" true
    (odd.peak_tflops > 100.);
  let skinny = Roofline.gemm gpu ~m:1 ~n:1024 ~k:1024 () in
  Alcotest.(check bool) "matrix-vector memory bound" true
    (skinny.bound = Roofline.Memory_bound)

let test_roofline_ceiling () =
  let big = Roofline.gemm gpu ~m:4096 ~n:4096 ~k:4096 () in
  Alcotest.(check bool) "ceiling = device peak when compute bound" true
    (abs_float (big.peak_tflops -. Hardware.peak_tflops gpu Hardware.Matrix) < 1.);
  let skinny = Roofline.gemm gpu ~m:1 ~n:1024 ~k:1024 () in
  Alcotest.(check bool) "memory-bound ceiling below peak" true
    (skinny.peak_tflops < Hardware.peak_tflops gpu Hardware.Matrix /. 10.)

let test_roofline_efficiency () =
  let r = Roofline.gemm gpu ~m:4096 ~n:4096 ~k:4096 () in
  Alcotest.(check (float 1e-9)) "half of ceiling" 0.5
    (Roofline.efficiency r ~achieved_tflops:(r.peak_tflops /. 2.));
  Alcotest.check_raises "invalid" (Invalid_argument "Roofline.analyze: non-positive inputs")
    (fun () -> ignore (Roofline.analyze gpu ~flops:0. ~footprint_bytes:1. ()))

(* --- Trace --- *)

let test_trace_spans_cover_tasks () =
  let load = case_load ~m:4096 in
  let trace = Trace.record gpu load in
  Alcotest.(check int) "one span per task" (Load.total_tasks load)
    (List.length trace.spans);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "pe in range" true
        (Trace.pe s >= 0 && Trace.pe s < gpu.num_pes);
      Alcotest.(check bool) "positive span" true (s.finish > s.start);
      Alcotest.(check bool) "within makespan" true (s.finish <= trace.makespan +. 1e-6))
    trace.spans

let test_trace_occupancy_drop () =
  (* The case study: full first wave, ~18% second wave. *)
  let trace = Trace.record gpu (case_load ~m:4096) in
  let early = Trace.occupancy trace ~at:(trace.makespan *. 0.25) in
  let late = Trace.occupancy trace ~at:(trace.makespan *. 0.75) in
  Alcotest.(check bool) "first wave full" true (early > 0.95);
  Alcotest.(check bool) "second wave ~20/108" true (late > 0.1 && late < 0.3)

let test_trace_timeline_renders () =
  let trace = Trace.record gpu (case_load ~m:3072) in
  let s = Trace.ascii_timeline ~width:40 trace in
  Alcotest.(check bool) "has device line" true
    (List.exists
       (fun l -> String.length l > 6 && String.sub l 0 6 = "device")
       (String.split_on_char '\n' s))

let test_trace_npu_max_min () =
  (* NPU spans come from the static max-min allocation: with 64 equal
     tasks on 32 cores, every core gets exactly two back-to-back spans. *)
  let kd = Kernel_desc.make ~um:64 ~un:64 ~uk:64 () in
  let load =
    Load.make
      ~regions:[ Load.region ~kernel:kd ~n_tasks:64 ~t_steps:8 ]
      ~footprint_bytes:0.
  in
  let trace = Trace.record npu load in
  Alcotest.(check int) "64 spans" 64 (List.length trace.spans);
  let per_core = Array.make npu.num_pes 0 in
  List.iter
    (fun (s : Trace.span) -> per_core.(Trace.pe s) <- per_core.(Trace.pe s) + 1)
    trace.spans;
  Array.iter (fun c -> Alcotest.(check int) "two per core" 2 c) per_core

let test_hardware_presets_valid () =
  List.iter
    (fun (hw : Hardware.t) ->
      Alcotest.(check bool) (hw.name ^ " sane") true
        (hw.num_pes > 0 && hw.clock_hz > 0.
        && hw.matrix_flops_per_cycle > 0.
        && hw.local_mem_bytes > 0
        && hw.fabric_bytes_per_cycle >= hw.dram_bytes_per_cycle
        && hw.matrix_slots >= 1))
    Hardware.presets;
  Alcotest.(check int) "five presets" 5 (List.length Hardware.presets)

let test_trace_rejects_huge () =
  let kd = mk 16 16 64 in
  let load =
    Load.make
      ~regions:
        [ Load.region ~kernel:kd ~n_tasks:(Sched.event_sim_threshold + 1) ~t_steps:1 ]
      ~footprint_bytes:0.
  in
  Alcotest.check_raises "too large"
    (Invalid_argument "Trace.record: program too large for event-driven simulation")
    (fun () -> ignore (Trace.record gpu load))

let test_gemm_footprint () =
  Alcotest.(check (float 0.)) "fp16 footprint"
    (float_of_int (((4 * 6) + (6 * 5) + (4 * 5)) * 2))
    (Load.gemm_footprint_bytes ~dtype:Mikpoly_tensor.Dtype.F16 ~m:4 ~n:5 ~k:6)

let () =
  Alcotest.run "accel"
    [
      ( "hardware",
        [
          Alcotest.test_case "presets" `Quick test_hardware_presets;
          Alcotest.test_case "cycles to seconds" `Quick test_cycles_to_seconds;
        ] );
      ( "kernel_desc",
        [
          Alcotest.test_case "validation" `Quick test_kernel_desc_validation;
          Alcotest.test_case "accounting" `Quick test_kernel_desc_accounting;
        ] );
      ( "kernel_model",
        [
          Alcotest.test_case "warps (paper Section 6)" `Quick test_warps_match_paper;
          Alcotest.test_case "blocks per PE" `Quick test_blocks_per_pe;
          Alcotest.test_case "sched_warps consistency" `Quick test_sched_warps_consistent;
          Alcotest.test_case "local bytes / fits" `Quick test_local_bytes_and_fits;
          Alcotest.test_case "shape efficiency" `Quick test_shape_eff_monotone;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "fill + steady formula" `Quick test_pipeline_formula;
          Alcotest.test_case "contention" `Quick test_pipeline_contention;
          qtest prop_pipeline_monotone_in_t;
          Alcotest.test_case "state machine matches closed form" `Quick
            test_pipeline_sim_matches_closed_form;
          Alcotest.test_case "state machine stalls" `Quick test_pipeline_sim_stalls;
          qtest prop_pipeline_sim_matches_closed_form;
        ] );
      ( "sched",
        [
          Alcotest.test_case "gpu single wave" `Quick test_sched_gpu_single_wave;
          Alcotest.test_case "gpu two waves" `Quick test_sched_gpu_two_waves;
          Alcotest.test_case "gpu multi-block" `Quick test_sched_gpu_multi_block;
          Alcotest.test_case "gpu stream backfill" `Quick test_sched_gpu_mixed_fills_gaps;
          Alcotest.test_case "gpu analytic fallback" `Quick test_sched_gpu_analytic_fallback;
          Alcotest.test_case "npu balance" `Quick test_sched_npu_balance;
          Alcotest.test_case "npu max-min" `Quick test_sched_npu_max_min_mixes_durations;
          Alcotest.test_case "empty" `Quick test_sched_empty;
          Alcotest.test_case "oversized rejected" `Quick test_sched_rejects_oversized;
          qtest prop_sched_busy_bounded;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "case study sm_efficiency (Table 9)" `Quick
            test_case_study_sm_efficiency;
          Alcotest.test_case "case study wave jump (Fig 15a)" `Quick
            test_case_study_wave_jump;
          Alcotest.test_case "never beats peak" `Quick test_simulator_never_beats_peak;
          Alcotest.test_case "dram floor" `Quick test_simulator_dram_floor;
          Alcotest.test_case "launch overhead" `Quick test_simulator_launch_overhead;
          Alcotest.test_case "misfit kernel rejected" `Quick test_simulator_rejects_misfit;
          Alcotest.test_case "mixed paths rejected" `Quick
            test_simulator_mixed_paths_rejected;
          Alcotest.test_case "gemm footprint" `Quick test_gemm_footprint;
          qtest prop_simulator_below_peak;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "gemm bounds" `Quick test_roofline_gemm_bounds;
          Alcotest.test_case "ceiling" `Quick test_roofline_ceiling;
          Alcotest.test_case "efficiency" `Quick test_roofline_efficiency;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans cover tasks" `Quick test_trace_spans_cover_tasks;
          Alcotest.test_case "occupancy drop (Fig 15b)" `Quick
            test_trace_occupancy_drop;
          Alcotest.test_case "timeline renders" `Quick test_trace_timeline_renders;
          Alcotest.test_case "npu max-min spans" `Quick test_trace_npu_max_min;
          Alcotest.test_case "hardware presets valid" `Quick
            test_hardware_presets_valid;
          Alcotest.test_case "rejects huge programs" `Quick test_trace_rejects_huge;
        ] );
    ]
