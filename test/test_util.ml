(* Tests for the utility substrate: PRNG, statistics, piecewise-linear
   fitting, heap and table rendering. *)

open Mikpoly_util

let check_float = Alcotest.(check (float 1e-9))

let qtest = QCheck_alcotest.to_alcotest

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_prng_int_in_singleton () =
  let rng = Prng.create 5 in
  Alcotest.(check int) "degenerate range" 42 (Prng.int_in rng 42 42)

let test_prng_float_range () =
  let rng = Prng.create 6 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_prng_float_varies () =
  let rng = Prng.create 8 in
  let xs = List.init 50 (fun _ -> Prng.float rng 1.) in
  let distinct = List.sort_uniq compare xs in
  Alcotest.(check bool) "many distinct draws" true (List.length distinct > 40)

let test_prng_log_int_in_bounds () =
  let rng = Prng.create 9 in
  for _ = 1 to 2000 do
    let v = Prng.log_int_in rng 3 5000 in
    Alcotest.(check bool) "in [3,5000]" true (v >= 3 && v <= 5000)
  done

let test_prng_log_int_in_spreads () =
  let rng = Prng.create 10 in
  let draws = List.init 500 (fun _ -> Prng.log_int_in rng 1 4096) in
  let small = List.length (List.filter (fun v -> v <= 64) draws) in
  let large = List.length (List.filter (fun v -> v > 512) draws) in
  Alcotest.(check bool) "log-uniform hits both ends" true (small > 50 && large > 50)

let test_prng_split_independent () =
  let parent = Prng.create 11 in
  let child = Prng.split parent in
  let xs = List.init 20 (fun _ -> Prng.int parent 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int child 1_000_000) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let test_prng_choice_shuffle () =
  let rng = Prng.create 12 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    let v = Prng.choice rng arr in
    Alcotest.(check bool) "choice member" true (Array.exists (( = ) v) arr)
  done;
  let arr2 = Array.init 100 Fun.id in
  Prng.shuffle rng arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 100 Fun.id) sorted

let test_prng_invalid_args () =
  let rng = Prng.create 13 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in: empty range")
    (fun () -> ignore (Prng.int_in rng 5 4))

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_stats_geomean () =
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ] ** 3. /. 4.)

let test_stats_geomean_simple () =
  check_float "geomean of equal" 3. (Stats.geomean [ 3.; 3.; 3. ])

let test_stats_median () =
  check_float "odd median" 2. (Stats.median [ 3.; 1.; 2. ]);
  check_float "even median" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ])

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  check_float "p0" 0. (Stats.percentile 0. xs);
  check_float "p100" 100. (Stats.percentile 100. xs);
  check_float "p50" 50. (Stats.percentile 50. xs)

let test_stats_stddev () =
  check_float "stddev" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_minmax_sum () =
  check_float "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  check_float "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  check_float "sum" 6. (Stats.sum [ 3.; 1.; 2. ])

let test_stats_pearson () =
  let pairs = List.init 10 (fun i -> (float_of_int i, 2. *. float_of_int i +. 1.)) in
  check_float "perfect correlation" 1. (Stats.pearson pairs);
  let anti = List.init 10 (fun i -> (float_of_int i, -.float_of_int i)) in
  check_float "perfect anticorrelation" (-1.) (Stats.pearson anti)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:4 [ 0.; 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "bins" 4 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 5 total

let test_stats_empty () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

(* --- Piecewise --- *)

let test_piecewise_exact_interp () =
  let f = Piecewise.of_points [ (0., 0.); (1., 10.); (2., 0.) ] in
  check_float "at breakpoint" 10. (Piecewise.eval f 1.);
  check_float "midpoint" 5. (Piecewise.eval f 0.5);
  check_float "second segment" 5. (Piecewise.eval f 1.5)

let test_piecewise_extrapolation () =
  let f = Piecewise.of_points [ (1., 1.); (2., 2.) ] in
  check_float "left extrapolation" 0. (Piecewise.eval f 0.);
  check_float "right extrapolation" 4. (Piecewise.eval f 4.)

let test_piecewise_fit_linear_collapses () =
  let samples = List.init 50 (fun i -> (float_of_int i, 3. *. float_of_int i +. 2.)) in
  let f = Piecewise.fit samples in
  Alcotest.(check bool) "few breakpoints" true
    (List.length (Piecewise.breakpoints f) <= 3);
  check_float "still accurate" 0. (Piecewise.max_rel_error f samples)

let test_piecewise_fit_error_bound () =
  let g x = if x < 10. then 5. +. (2. *. x) else 25. +. (0.5 *. (x -. 10.)) in
  let samples = List.init 100 (fun i -> (float_of_int i, g (float_of_int i))) in
  let f = Piecewise.fit ~tolerance:0.01 samples in
  Alcotest.(check bool) "error within 2x tolerance" true
    (Piecewise.max_rel_error f samples <= 0.02)

let test_piecewise_duplicate_abscissa () =
  Alcotest.check_raises "duplicate x"
    (Invalid_argument "Piecewise.of_points: duplicate abscissa") (fun () ->
      ignore (Piecewise.of_points [ (1., 1.); (1., 2.) ]))

let test_piecewise_degenerate_inputs () =
  (* A piecewise-linear function needs two knots: the empty and
     single-knot models are rejected, never silently constant. *)
  Alcotest.check_raises "empty"
    (Invalid_argument "Piecewise.of_points: need >= 2 points") (fun () ->
      ignore (Piecewise.of_points []));
  Alcotest.check_raises "single knot"
    (Invalid_argument "Piecewise.of_points: need >= 2 points") (fun () ->
      ignore (Piecewise.of_points [ (1., 1.) ]))

let test_piecewise_non_monotone_input () =
  (* Knots given out of abscissa order define the same function as the
     sorted ones — construction sorts, it does not trust input order. *)
  let shuffled = Piecewise.of_points [ (2., 0.); (0., 0.); (1., 10.) ] in
  let sorted = Piecewise.of_points [ (0., 0.); (1., 10.); (2., 0.) ] in
  List.iter
    (fun x ->
      check_float
        (Printf.sprintf "same value at %g" x)
        (Piecewise.eval sorted x) (Piecewise.eval shuffled x))
    [ -1.; 0.; 0.5; 1.; 1.5; 2.; 3. ];
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "breakpoints sorted"
    (Piecewise.breakpoints sorted)
    (Piecewise.breakpoints shuffled)

let test_piecewise_far_extrapolation () =
  (* Out-of-range queries follow the terminal segments linearly, even far
     beyond the knot span — the calibration layer leans on this when a
     shape is much larger than anything observed. *)
  let f = Piecewise.of_points [ (0., 0.); (10., 20.) ] in
  check_float "far right" 200. (Piecewise.eval f 100.);
  check_float "far left" (-200.) (Piecewise.eval f (-100.))

(* --- Kendall tau --- *)

let test_kendall_tau_perfect () =
  let pairs = List.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) in
  check_float "monotone agreement" 1. (Stats.kendall_tau pairs);
  let anti = List.init 10 (fun i -> (float_of_int i, -.float_of_int i)) in
  check_float "monotone disagreement" (-1.) (Stats.kendall_tau anti)

let test_kendall_tau_partial () =
  (* One swapped adjacent pair out of four items: 5 concordant pairs, 1
     discordant, tau = (5 - 1) / 6. *)
  let pairs = [ (1., 1.); (2., 3.); (3., 2.); (4., 4.) ] in
  check_float "one inversion" (4. /. 6.) (Stats.kendall_tau pairs)

let test_kendall_tau_ties () =
  (* tau-b: tied pairs count in neither numerator side and shrink the
     denominator. All-tied y degenerates to 0, not a crash. *)
  check_float "all tied" 0.
    (Stats.kendall_tau [ (1., 5.); (2., 5.); (3., 5.) ]);
  (* The mirror regression: a constant {e predictor} (all-tied x) must
     also score 0, never a spurious 1 — under naive tau a constant
     scorer has no discordant pairs and would look like perfect ranking.
     The ranking evaluator leans on this when a scorer degenerates. *)
  check_float "constant predictor" 0.
    (Stats.kendall_tau [ (5., 1.); (5., 2.); (5., 3.) ]);
  check_float "all pairs tied both ways" 0.
    (Stats.kendall_tau [ (5., 7.); (5., 7.); (5., 7.) ]);
  (* Partial ties: 3 items, x ties the first two. Untied pairs are
     (1,3) and (2,3), both concordant; tau-b = 2 / sqrt(2 * 3). *)
  check_float "partial x ties"
    (2. /. sqrt 6.)
    (Stats.kendall_tau [ (5., 1.); (5., 2.); (6., 3.) ]);
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Stats.kendall_tau: need at least two samples")
    (fun () -> ignore (Stats.kendall_tau [ (1., 1.) ]))

let prop_piecewise_interpolates =
  QCheck.Test.make ~name:"piecewise: exact interpolant hits every sample" ~count:50
    QCheck.(list_of_size (Gen.int_range 2 20) (pair (float_range 0. 1000.) (float_range 1. 1000.)))
    (fun pts ->
      let dedup =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) pts
      in
      QCheck.assume (List.length dedup >= 2);
      let f = Piecewise.of_points dedup in
      List.for_all (fun (x, y) -> abs_float (Piecewise.eval f x -. y) < 1e-6 *. (1. +. abs_float y)) dedup)

(* --- Heap --- *)

let test_heap_sorted_pops () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 8; 9 ] (drain [])

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "size" 2 (Heap.size h)

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap: drains in sorted order" ~count:100
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "== t")

let test_table_row_width_mismatch () =
  let t = Table.create ~title:"t" ~header:[ "a" ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Table.add_row: row width does not match header") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_csv_quoting () =
  let t = Table.create ~title:"t" ~header:[ "a" ] in
  Table.add_row t [ "x,y" ];
  Alcotest.(check string) "quoted" "a\n\"x,y\"" (Table.to_csv t)

let test_table_fmt () =
  Alcotest.(check string) "speedup" "1.49x" (Table.fmt_speedup 1.49);
  Alcotest.(check string) "us" "2.00us" (Table.fmt_time_us 2e-6);
  Alcotest.(check string) "ms" "1.500ms" (Table.fmt_time_us 1.5e-3)

(* --- Domain_pool --- *)

let test_pool_parallel_for_covers () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let acc = Array.make n 0 in
      Domain_pool.parallel_for pool ~start:0 ~stop:n (fun i ->
          acc.(i) <- (i * i) + 1);
      Alcotest.(check bool) "every index ran exactly once" true
        (acc = Array.init n (fun i -> (i * i) + 1)))

let test_pool_map_reduce_job_invariant () =
  let map i = (i * 7) mod 13
  and reduce = ( + ) in
  let at jobs =
    Domain_pool.with_pool ~jobs (fun p ->
        Domain_pool.map_reduce p ~start:0 ~stop:500 ~map ~reduce 0)
  in
  let seq = at 1 in
  Alcotest.(check int) "jobs=2" seq (at 2);
  Alcotest.(check int) "jobs=4" seq (at 4)

let test_pool_map_array_order () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      let a = Array.init 257 string_of_int in
      let b = Domain_pool.map_array pool (fun s -> s ^ "!") a in
      Alcotest.(check bool) "order preserved" true
        (b = Array.map (fun s -> s ^ "!") a))

exception Boom

let test_pool_exception_propagates_and_drains () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      (match
         Domain_pool.parallel_for pool ~start:0 ~stop:100 (fun i ->
             if i = 37 then raise Boom)
       with
      | () -> Alcotest.fail "expected Boom to propagate"
      | exception Boom -> ());
      (* the failed region must leave the pool drained and usable *)
      let hits = Atomic.make 0 in
      Domain_pool.parallel_for pool ~start:0 ~stop:64 (fun _ ->
          Atomic.incr hits);
      Alcotest.(check int) "pool usable after failure" 64 (Atomic.get hits))

let test_pool_nested_submit_runs_inline () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      let outer = Atomic.make 0 and inner = Atomic.make 0 in
      Domain_pool.parallel_for pool ~start:0 ~stop:4 (fun _ ->
          Atomic.incr outer;
          (* a body calling back into its own pool must not deadlock *)
          Domain_pool.parallel_for pool ~start:0 ~stop:3 (fun _ ->
              Atomic.incr inner));
      Alcotest.(check int) "outer bodies" 4 (Atomic.get outer);
      Alcotest.(check int) "inner bodies" 12 (Atomic.get inner))

let test_pool_jobs1_and_shutdown_idempotent () =
  let pool = Domain_pool.create ~jobs:1 in
  let hits = ref 0 in
  Domain_pool.parallel_for pool ~start:0 ~stop:5 (fun _ -> incr hits);
  Alcotest.(check int) "jobs=1 runs inline" 5 !hits;
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* submitting to a shut-down pool degrades to sequential *)
  Domain_pool.parallel_for pool ~start:0 ~stop:3 (fun _ -> incr hits);
  Alcotest.(check int) "after shutdown" 8 !hits

let test_pool_batched_covers () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let acc = Array.make n 0 in
      Domain_pool.parallel_for_batched pool ~min_chunk:16 ~start:0 ~stop:n
        (fun i -> acc.(i) <- i + 1);
      Alcotest.(check bool) "every index ran exactly once" true
        (acc = Array.init n (fun i -> i + 1)))

let test_pool_batched_inline_paths () =
  (* jobs=1: the batched loop must never submit a region *)
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      let hits = ref 0 in
      Domain_pool.parallel_for_batched pool ~min_chunk:1 ~start:0 ~stop:100
        (fun _ -> incr hits);
      Alcotest.(check int) "jobs=1 covers" 100 !hits;
      Alcotest.(check int) "jobs=1: zero dispatches" 0
        (Domain_pool.dispatches pool));
  (* short range on a parallel pool: below the min_chunk floor the call
     is a plain loop — the dispatch counter must not move *)
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let hits = ref 0 in
      Domain_pool.parallel_for_batched pool ~min_chunk:64 ~start:0 ~stop:64
        (fun _ -> incr hits);
      Alcotest.(check int) "short range covers" 64 !hits;
      Alcotest.(check int) "short range: zero dispatches" 0
        (Domain_pool.dispatches pool);
      (* nested inside a region body: inline, no second dispatch *)
      let inner = Atomic.make 0 in
      Domain_pool.parallel_for pool ~start:0 ~stop:4 (fun _ ->
          Domain_pool.parallel_for_batched pool ~min_chunk:1 ~start:0 ~stop:50
            (fun _ -> Atomic.incr inner));
      Alcotest.(check int) "nested covers" 200 (Atomic.get inner);
      Alcotest.(check int) "nested: only the outer region dispatched" 1
        (Domain_pool.dispatches pool))

let test_pool_batched_dispatches_when_worth_it () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      Domain_pool.parallel_for_batched pool ~min_chunk:8 ~start:0 ~stop:1024
        (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "covers" 1024 (Atomic.get hits);
      Alcotest.(check bool) "large range dispatches to workers" true
        (Domain_pool.dispatches pool > 0);
      Alcotest.check_raises "min_chunk validated"
        (Invalid_argument
           "Domain_pool.parallel_for_batched: min_chunk must be >= 1")
        (fun () ->
          Domain_pool.parallel_for_batched pool ~min_chunk:0 ~start:0 ~stop:4
            (fun _ -> ())))

let test_pool_host_cores_and_effective_jobs () =
  Alcotest.(check bool) "host_cores >= 1" true (Domain_pool.host_cores () >= 1);
  Alcotest.(check int) "effective_jobs floor" 1 (Domain_pool.effective_jobs 1);
  let cap = Domain.recommended_domain_count () in
  Alcotest.(check bool) "effective_jobs clamps to host concurrency" true
    (Domain_pool.effective_jobs 64 <= cap);
  Alcotest.(check bool) "host_cores covers the clamp" true
    (Domain_pool.host_cores () >= cap)

let test_pool_resolve_jobs () =
  let saved = Domain_pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.set_default_jobs saved)
    (fun () ->
      Domain_pool.set_default_jobs 3;
      Alcotest.(check int) "0 inherits default" 3 (Domain_pool.resolve_jobs 0);
      Alcotest.(check int) "explicit wins" 2 (Domain_pool.resolve_jobs 2);
      Alcotest.(check bool) "recommended >= 1" true
        (Domain_pool.recommended_jobs () >= 1))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "int_in singleton" `Quick test_prng_int_in_singleton;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float varies" `Quick test_prng_float_varies;
          Alcotest.test_case "log_int_in bounds" `Quick test_prng_log_int_in_bounds;
          Alcotest.test_case "log_int_in spreads" `Quick test_prng_log_int_in_spreads;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "choice/shuffle" `Quick test_prng_choice_shuffle;
          Alcotest.test_case "invalid args" `Quick test_prng_invalid_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "geomean equal" `Quick test_stats_geomean_simple;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max/sum" `Quick test_stats_minmax_sum;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
        ] );
      ( "piecewise",
        [
          Alcotest.test_case "exact interpolation" `Quick test_piecewise_exact_interp;
          Alcotest.test_case "extrapolation" `Quick test_piecewise_extrapolation;
          Alcotest.test_case "fit collapses linear" `Quick test_piecewise_fit_linear_collapses;
          Alcotest.test_case "fit error bound" `Quick test_piecewise_fit_error_bound;
          Alcotest.test_case "duplicate abscissa" `Quick test_piecewise_duplicate_abscissa;
          Alcotest.test_case "degenerate inputs rejected" `Quick
            test_piecewise_degenerate_inputs;
          Alcotest.test_case "non-monotone input sorted" `Quick
            test_piecewise_non_monotone_input;
          Alcotest.test_case "far extrapolation" `Quick
            test_piecewise_far_extrapolation;
          qtest prop_piecewise_interpolates;
        ] );
      ( "kendall_tau",
        [
          Alcotest.test_case "perfect agreement" `Quick test_kendall_tau_perfect;
          Alcotest.test_case "partial agreement" `Quick test_kendall_tau_partial;
          Alcotest.test_case "ties and degenerate input" `Quick
            test_kendall_tau_ties;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted pops" `Quick test_heap_sorted_pops;
          Alcotest.test_case "peek/size" `Quick test_heap_peek;
          qtest prop_heap_matches_sort;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_row_width_mismatch;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
          Alcotest.test_case "formatting" `Quick test_table_fmt;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick
            test_pool_parallel_for_covers;
          Alcotest.test_case "map_reduce job-invariant" `Quick
            test_pool_map_reduce_job_invariant;
          Alcotest.test_case "map_array preserves order" `Quick
            test_pool_map_array_order;
          Alcotest.test_case "exception propagates, pool drains" `Quick
            test_pool_exception_propagates_and_drains;
          Alcotest.test_case "nested submit runs inline" `Quick
            test_pool_nested_submit_runs_inline;
          Alcotest.test_case "jobs=1 and shutdown idempotent" `Quick
            test_pool_jobs1_and_shutdown_idempotent;
          Alcotest.test_case "resolve_jobs" `Quick test_pool_resolve_jobs;
          Alcotest.test_case "batched covers range" `Quick
            test_pool_batched_covers;
          Alcotest.test_case "batched inline paths dispatch nothing" `Quick
            test_pool_batched_inline_paths;
          Alcotest.test_case "batched dispatches when worth it" `Quick
            test_pool_batched_dispatches_when_worth_it;
          Alcotest.test_case "host_cores and effective_jobs" `Quick
            test_pool_host_cores_and_effective_jobs;
        ] );
    ]
