(* Tests for lib/telemetry: tracer nesting/ordering invariants, the
   metrics registry's bucket semantics, the Chrome trace exporter
   (golden, byte-for-byte), the no-op-sink overhead bound, and an
   end-to-end check that one profiled serving run produces spans from
   all four instrumented layers. *)

open Mikpoly_telemetry

(* Every test owns the global tracer: start clean, leave clean. *)
let with_tracer f =
  Tracer.reset ();
  Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Tracer.disable ();
      Tracer.reset ())
    f

(* --- Tracer --- *)

let test_disabled_is_noop () =
  Tracer.reset ();
  Tracer.disable ();
  let r = Tracer.with_span "outer" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Tracer.annotate "k" "v";
  Tracer.emit ~track:"x" ~name:"s" ~start:0. ~finish:1. ();
  Tracer.set_units ~track:"x" ~per_second:1e9;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.span_count ());
  Alcotest.(check (float 0.)) "units not declared" 1.0 (Tracer.units "x")

let test_nesting_and_parents () =
  with_tracer (fun () ->
      Tracer.with_span "outer" (fun () ->
          Tracer.with_span "inner" (fun () -> ());
          Tracer.with_span "inner2" (fun () -> ()));
      let spans = Tracer.spans () in
      Alcotest.(check int) "three spans" 3 (List.length spans);
      let find name = List.find (fun (s : Span.t) -> s.name = name) spans in
      let outer = find "outer" and inner = find "inner" in
      let inner2 = find "inner2" in
      Alcotest.(check int) "outer is a root" Span.no_parent outer.parent;
      Alcotest.(check int) "inner under outer" outer.id inner.parent;
      Alcotest.(check int) "inner2 under outer" outer.id inner2.parent;
      Alcotest.(check string) "wall track" Tracer.wall_track outer.track;
      List.iter
        (fun (s : Span.t) ->
          Alcotest.(check bool) "non-negative duration" true
            (Span.duration s >= 0.))
        spans;
      Alcotest.(check bool) "children inside parent" true
        (inner.start >= outer.start && inner2.finish <= outer.finish);
      Alcotest.(check bool) "siblings ordered" true
        (inner.finish <= inner2.start))

let test_spans_sorted_and_attrs () =
  with_tracer (fun () ->
      Tracer.set_units ~track:"device/x" ~per_second:1e9;
      Tracer.emit ~track:"device/x" ~name:"late" ~start:50. ~finish:60. ();
      Tracer.emit ~track:"device/x" ~name:"early" ~start:10. ~finish:20. ();
      Tracer.with_span "host-side"
        ~attrs:[ ("shape", "4x4x4") ]
        (fun () -> Tracer.annotate "cache" "miss");
      let spans = Tracer.spans () in
      let names = List.map (fun (s : Span.t) -> s.name) spans in
      (* compare_start: track-major ("device/x" < "host"), start-minor *)
      Alcotest.(check (list string)) "deterministic order"
        [ "early"; "late"; "host-side" ] names;
      let host = List.nth spans 2 in
      Alcotest.(check (list (pair string string)))
        "open attrs precede annotations"
        [ ("shape", "4x4x4"); ("cache", "miss") ]
        host.attrs;
      Alcotest.(check (option string)) "attr lookup" (Some "miss")
        (Span.attr host "cache");
      Alcotest.(check int) "int_attr default" 7
        (Span.int_attr ~default:7 host "absent");
      Alcotest.(check (float 0.)) "units recorded" 1e9
        (Tracer.units "device/x"))

let test_span_survives_exception () =
  with_tracer (fun () ->
      (try Tracer.with_span "boom" (fun () -> failwith "no") with
      | Failure _ -> ());
      Tracer.with_span "after" (fun () -> ());
      let spans = Tracer.spans () in
      Alcotest.(check int) "both recorded" 2 (List.length spans);
      List.iter
        (fun (s : Span.t) ->
          Alcotest.(check int)
            (s.name ^ " is a root — stack not corrupted")
            Span.no_parent s.parent)
        spans)

(* --- Metrics --- *)

let test_histogram_bucket_edges () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.; 2.; 5. |] "h" in
  List.iter (Metrics.observe h) [ 1.0; 1.5; 5.0; 7.0; 0.0 ];
  match Metrics.find (Metrics.snapshot ~registry:reg ()) "h" with
  | Some (Metrics.Histogram { buckets; counts; sum; count; _ }) ->
    Alcotest.(check (array (float 0.))) "bounds kept" [| 1.; 2.; 5. |] buckets;
    (* le semantics: 0.0 and 1.0 land in le=1, 1.5 in le=2, 5.0 in le=5,
       7.0 in the implicit overflow bucket *)
    Alcotest.(check (array int)) "le counts" [| 2; 1; 1; 1 |] counts;
    Alcotest.(check int) "count" 5 count;
    Alcotest.(check (float 1e-9)) "sum" 14.5 sum
  | _ -> Alcotest.fail "histogram not found"

let test_histogram_rejects_bad_buckets () =
  let reg = Metrics.create () in
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () ->
      ignore (Metrics.histogram ~registry:reg ~buckets:[| 2.; 1. |] "bad"))

let test_counter_diff_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "c" in
  Metrics.incr c;
  let before = Metrics.snapshot ~registry:reg () in
  Metrics.add c 10;
  let after = Metrics.snapshot ~registry:reg () in
  (match Metrics.find (Metrics.diff ~before ~after) "c" with
  | Some (Metrics.Counter { value; _ }) ->
    Alcotest.(check int) "diff isolates the region" 10 value
  | _ -> Alcotest.fail "counter not found");
  Alcotest.(check bool) "same name same cell" true
    (Metrics.counter ~registry:reg "c" == c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: c registered as a different kind")
    (fun () -> ignore (Metrics.gauge ~registry:reg "c"));
  Metrics.reset ~registry:reg ();
  Alcotest.(check int) "reset zeroes, keeps registration" 0
    (Metrics.counter_value c)

(* --- Chrome trace exporter (golden) --- *)

let test_chrome_trace_golden () =
  let spans =
    [
      Span.make ~id:1 ~lane:2
        ~attrs:[ ("tasks", "4") ]
        ~track:"device/x" ~name:"mk" ~start:100. ~finish:300. ();
      Span.make ~id:2 ~parent:1 ~track:"host" ~name:"compile" ~start:0.5
        ~finish:1.0 ();
    ]
  in
  let units = function "device/x" -> 1e6 | _ -> 1.0 in
  let got = Export_chrome.to_string ~units spans in
  let expected =
    String.concat ""
      [
        {|{"traceEvents":[|};
        {|{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"device/x"}},|};
        {|{"ph":"M","pid":2,"tid":0,"name":"process_name","args":{"name":"host"}},|};
        {|{"name":"mk","cat":"device/x","ph":"X","pid":1,"tid":2,"ts":100,"dur":200,"args":{"tasks":"4"}},|};
        {|{"name":"compile","cat":"host","ph":"X","pid":2,"tid":0,"ts":500000,"dur":500000,"args":{"parent":1}}|};
        {|],"displayTimeUnit":"ms"}|};
      ]
  in
  Alcotest.(check string) "byte-for-byte" expected got;
  (* and the validator side of the round trip *)
  match Json.parse got with
  | Error e -> Alcotest.fail ("exporter output does not parse: " ^ e)
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.List events) ->
      Alcotest.(check int) "2 meta + 2 spans" 4 (List.length events)
    | _ -> Alcotest.fail "traceEvents missing")

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Number 1.5);
        ("i", Json.Number 3.);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.fail e

(* --- No-op sink overhead --- *)

(* With tracing disabled the instrumented compile path must stay within
   5% of the genuinely uninstrumented one ([~instrument:false] skips
   even the enabled() checks and metric stores). Best-of-batches makes
   the comparison robust to scheduler noise. *)
let test_noop_overhead_under_5_percent () =
  Tracer.reset ();
  Tracer.disable ();
  let hw = Mikpoly_accel.Hardware.a100 in
  let compiler = Mikpoly_core.Compiler.create hw in
  let op = Mikpoly_ir.Operator.gemm ~m:777 ~n:1234 ~k:555 () in
  let time_batch f =
    let reps = 40 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let best f =
    (* warm up, then best of 12 batches *)
    ignore (time_batch f);
    let best = ref infinity in
    for _ = 1 to 12 do
      best := Float.min !best (time_batch f)
    done;
    !best
  in
  let base =
    best (fun () -> Mikpoly_core.Compiler.compile_fresh ~instrument:false compiler op)
  in
  let instrumented =
    best (fun () -> Mikpoly_core.Compiler.compile_fresh compiler op)
  in
  let overhead = (instrumented /. base) -. 1. in
  Alcotest.(check bool)
    (Printf.sprintf "no-op sink overhead %.2f%% < 5%%" (100. *. overhead))
    true (overhead < 0.05)

(* --- Parallel recording: spans from worker domains --- *)

let test_parallel_spans_recorded () =
  with_tracer (fun () ->
      let n = 24 in
      Mikpoly_util.Domain_pool.with_pool ~jobs:4 (fun pool ->
          Mikpoly_util.Domain_pool.parallel_for pool ~start:0 ~stop:n (fun i ->
              Tracer.with_span
                ("work." ^ string_of_int i)
                (fun () -> Tracer.annotate "i" (string_of_int i))));
      (* every body's span was captured, none corrupted, ids all unique *)
      let spans = Tracer.spans () in
      let work =
        List.filter
          (fun (s : Span.t) ->
            String.length s.name > 5 && String.sub s.name 0 5 = "work.")
          spans
      in
      Alcotest.(check int) "one span per body" n (List.length work);
      let ids = List.sort_uniq compare (List.map (fun (s : Span.t) -> s.id) spans) in
      Alcotest.(check int) "span ids unique" (List.length spans) (List.length ids);
      List.iter
        (fun (s : Span.t) ->
          let i = String.sub s.name 5 (String.length s.name - 5) in
          Alcotest.(check bool)
            ("annotation survived on " ^ s.name)
            true
            (List.mem ("i", i) s.attrs))
        work;
      (* and the merged buffers still export as a loadable trace *)
      match Json.parse (Export_chrome.of_tracer ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("trace does not parse: " ^ e))

(* --- Integration: all four layers on one timeline --- *)

let test_profiled_serve_covers_all_layers () =
  with_tracer (fun () ->
      (* v100: a preset no other test in this binary tunes, so the
         offline stage actually runs (the kernel-set cache is
         process-global) and its span lands in this trace *)
      let hw = Mikpoly_accel.Hardware.v100 in
      let compiler = Mikpoly_core.Compiler.create hw in
      let engine = Mikpoly_serve.Scheduler.mikpoly_engine compiler in
      let trace =
        Mikpoly_serve.Request.poisson ~seed:3 ~rate:40. ~count:8 ~max_prompt:32
          ~max_output:4 ()
      in
      let config =
        {
          Mikpoly_serve.Scheduler.replicas = 1;
          batcher = Mikpoly_serve.Batcher.Greedy { max_batch = 8 };
          bucketing = Mikpoly_serve.Bucketing.Aligned 8;
          cache_capacity = 16;
        }
      in
      let outcome = Mikpoly_serve.Scheduler.run config engine trace in
      Alcotest.(check int) "all requests served" 8
        (List.length outcome.Mikpoly_serve.Scheduler.completed);
      let spans = Tracer.spans () in
      let has p = List.exists p spans in
      Alcotest.(check bool) "offline stage span" true
        (has (fun (s : Span.t) -> s.name = "offline.tune"));
      Alcotest.(check bool) "online polymerization span" true
        (has (fun (s : Span.t) -> s.name = "polymerize.search"));
      Alcotest.(check bool) "device simulation span" true
        (has (fun (s : Span.t) ->
             String.length s.track > 7 && String.sub s.track 0 7 = "device/"));
      Alcotest.(check bool) "serve scheduler span" true
        (has (fun (s : Span.t) -> s.track = "serve" && s.name = "request"));
      (* the whole thing exports as a loadable trace *)
      match Json.parse (Export_chrome.of_tracer ()) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("trace does not parse: " ^ e))

let () =
  Alcotest.run "telemetry"
    [
      ( "tracer",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "nesting and parents" `Quick
            test_nesting_and_parents;
          Alcotest.test_case "ordering and attributes" `Quick
            test_spans_sorted_and_attrs;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket edges" `Quick
            test_histogram_bucket_edges;
          Alcotest.test_case "histogram rejects bad buckets" `Quick
            test_histogram_rejects_bad_buckets;
          Alcotest.test_case "counter diff and reset" `Quick
            test_counter_diff_reset;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace golden" `Quick
            test_chrome_trace_golden;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "no-op sink < 5%" `Slow
            test_noop_overhead_under_5_percent;
        ] );
      ( "integration",
        [
          Alcotest.test_case "parallel spans recorded" `Quick
            test_parallel_spans_recorded;
          Alcotest.test_case "profiled serve covers all layers" `Quick
            test_profiled_serve_covers_all_layers;
        ] );
    ]
