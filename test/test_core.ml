(* Tests for the MikPoly core: polymerization patterns, the Equation-2
   cost model, the online polymerizer (Algorithm 1) and the compiler
   front-end, including end-to-end numerical correctness of compiled
   programs and oracle-consistency of the search. *)

open Mikpoly_core
open Mikpoly_ir
open Mikpoly_accel

let qtest = QCheck_alcotest.to_alcotest

let gpu = Hardware.a100

let npu = Hardware.ascend910

let gpu_compiler = lazy (Compiler.create gpu)

let npu_compiler = lazy (Compiler.create npu)

(* --- Pattern --- *)

let rect_area (r : Pattern.rect) = r.rows * r.cols

let partitions_exactly ~m ~n rects =
  let area = List.fold_left (fun acc r -> acc + rect_area r) 0 rects in
  let in_bounds (r : Pattern.rect) =
    r.row_off >= 0 && r.col_off >= 0 && r.rows >= 1 && r.cols >= 1
    && r.row_off + r.rows <= m
    && r.col_off + r.cols <= n
  in
  let overlap (a : Pattern.rect) (b : Pattern.rect) =
    a.row_off < b.row_off + b.rows
    && b.row_off < a.row_off + a.rows
    && a.col_off < b.col_off + b.cols
    && b.col_off < a.col_off + a.cols
  in
  let rec no_overlap = function
    | [] -> true
    | r :: rest -> (not (List.exists (overlap r) rest)) && no_overlap rest
  in
  area = m * n && List.for_all in_bounds rects && no_overlap rects

let test_pattern_region_counts () =
  let count p cuts =
    match Pattern.decompose p ~m:100 ~n:100 ~cuts with
    | Some rects -> List.length rects
    | None -> -1
  in
  Alcotest.(check int) "I" 1 (count Pattern.I []);
  Alcotest.(check int) "II" 2 (count Pattern.II [ 40 ]);
  Alcotest.(check int) "III" 2 (count Pattern.III [ 40 ]);
  Alcotest.(check int) "IV" 4 (count Pattern.IV [ 40; 60 ]);
  Alcotest.(check int) "V" 3 (count Pattern.V [ 40; 60 ]);
  Alcotest.(check int) "VI" 3 (count Pattern.VI [ 40; 60 ]);
  Alcotest.(check int) "VII" 3 (count Pattern.VII [ 30; 60 ]);
  Alcotest.(check int) "VIII" 3 (count Pattern.VIII [ 30; 60 ]);
  Alcotest.(check int) "IX" 3 (count Pattern.IX [ 40; 60 ])

let test_pattern_degenerate_cuts () =
  Alcotest.(check bool) "cut at border rejected" true
    (Pattern.decompose Pattern.II ~m:100 ~n:100 ~cuts:[ 100 ] = None);
  Alcotest.(check bool) "cut at 0 rejected" true
    (Pattern.decompose Pattern.II ~m:100 ~n:100 ~cuts:[ 0 ] = None);
  Alcotest.(check bool) "VII needs increasing cuts" true
    (Pattern.decompose Pattern.VII ~m:100 ~n:100 ~cuts:[ 60; 30 ] = None)

let test_pattern_wrong_arity () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Pattern.decompose: wrong number of cuts") (fun () ->
      ignore (Pattern.decompose Pattern.II ~m:10 ~n:10 ~cuts:[]))

let test_pattern_defaults () =
  Alcotest.(check int) "gpu patterns" 2 (List.length Pattern.gpu_defaults);
  Alcotest.(check int) "npu patterns" 9 (List.length Pattern.npu_defaults)

let prop_patterns_partition =
  QCheck.Test.make ~name:"patterns: every decomposition partitions the output"
    ~count:200
    QCheck.(
      quad (int_range 2 300) (int_range 2 300) (int_range 1 299) (int_range 1 299))
    (fun (m, n, c1, c2) ->
      List.for_all
        (fun p ->
          let cuts =
            match Pattern.arity p with
            | 0 -> []
            | 1 -> [ c1 ]
            | _ -> [ min c1 c2; max c1 c2 ]
          in
          if List.length cuts = 2 && c1 = c2 then true
          else
            match Pattern.decompose p ~m ~n ~cuts with
            | None -> true
            | Some rects -> partitions_exactly ~m ~n rects)
        Pattern.all)

(* --- Config --- *)

let test_config_defaults () =
  let g = Config.default gpu in
  Alcotest.(check int) "n_gen" 32 g.n_gen;
  Alcotest.(check int) "n_syn" 12 g.n_syn;
  Alcotest.(check int) "n_mik" 40 g.n_mik;
  Alcotest.(check int) "n_pred" 5120 g.n_pred;
  Alcotest.(check int) "gpu patterns" 2 (List.length g.patterns);
  let n = Config.default npu in
  Alcotest.(check int) "npu patterns" 9 (List.length n.patterns)

let test_config_with_path () =
  let g = Config.with_path Hardware.Vector (Config.default gpu) in
  Alcotest.(check bool) "vector path" true (g.path = Hardware.Vector);
  Alcotest.(check bool) "lower codegen quality" true (g.codegen_eff < 0.88);
  Alcotest.(check bool) "different cache key" true
    (Config.cache_key g <> Config.cache_key (Config.default gpu))

(* --- Kernel_set --- *)

let test_kernel_set_size_and_cache () =
  let set1 = Compiler.kernels (Lazy.force gpu_compiler) in
  Alcotest.(check int) "n_mik entries" 40 (Kernel_set.size set1);
  let set2 = Kernel_set.create gpu (Config.default gpu) in
  Alcotest.(check bool) "memoized" true (set1 == set2)

let test_kernel_set_find () =
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let e = set.entries.(0) in
  Alcotest.(check bool) "find existing" true
    (Kernel_set.find set ~um:e.desc.um ~un:e.desc.un ~uk:e.desc.uk <> None);
  Alcotest.(check bool) "missing" true (Kernel_set.find set ~um:512 ~un:512 ~uk:512 = None)

(* --- Cost model --- *)

let entry () = (Compiler.kernels (Lazy.force gpu_compiler)).entries.(0)

let test_cost_model_identities () =
  let e = entry () in
  let rows = 1000 and cols = 900 and k_len = 700 in
  let ceil_div a b = (a + b - 1) / b in
  Alcotest.(check int) "f_parallel"
    (ceil_div rows e.desc.um * ceil_div cols e.desc.un)
    (Cost_model.f_parallel e ~rows ~cols);
  Alcotest.(check int) "f_num" (ceil_div k_len e.desc.uk)
    (Cost_model.f_num e ~k_len);
  let waves = Cost_model.f_wave e ~rows ~cols in
  Alcotest.(check (float 1e-9)) "f_wave = ceil(parallel/capacity)"
    (float_of_int
       (ceil_div (Cost_model.f_parallel e ~rows ~cols) e.wave_capacity))
    waves;
  Alcotest.(check (float 1e-6)) "Eq. 2 product"
    (waves *. Cost_model.f_pipe e ~k_len)
    (Cost_model.region_cost Cost_model.Full e ~rows ~cols ~k_len)

let test_cost_model_program_sum () =
  let compiler = Lazy.force gpu_compiler in
  let op = Operator.gemm ~m:4096 ~n:1024 ~k:4096 () in
  let c = Compiler.compile compiler op in
  let total =
    Cost_model.program_cost Cost_model.Full (Compiler.kernels compiler) c.program
  in
  let per_region =
    List.fold_left
      (fun acc r ->
        acc
        +. Cost_model.region_cost_of Cost_model.Full (Compiler.kernels compiler) r)
      0. c.program.regions
  in
  Alcotest.(check (float 1e-6)) "sum over regions" per_region total

let test_cost_model_correlates_with_simulator () =
  (* The lightweight model must rank programs like the simulator does. *)
  let compiler = Lazy.force gpu_compiler in
  let set = Compiler.kernels compiler in
  let pairs =
    List.map
      (fun (m, n, k) ->
        let op = Operator.gemm ~m ~n ~k () in
        let c = Compiler.compile_fresh compiler op in
        let predicted = Cost_model.program_cost Cost_model.Full set c.program in
        let sim = (Compiler.simulate compiler c).sched_cycles in
        (log predicted, log sim))
      [ (128, 128, 128); (512, 512, 512); (1024, 2048, 256); (4096, 1024, 4096);
        (300, 5000, 700); (64, 64, 8192); (2048, 2048, 2048); (7000, 128, 1760) ]
  in
  Alcotest.(check bool) "rank correlation > 0.95" true
    (Mikpoly_util.Stats.pearson pairs > 0.95)

(* --- Polymerize --- *)

let test_row_cuts_aligned () =
  let e = entry () in
  let cuts = Polymerize.row_cuts e ~rows:4096 ~cols:1024 ~max_cuts:6 in
  Alcotest.(check bool) "nonempty" true (cuts <> []);
  List.iter
    (fun c ->
      Alcotest.(check int) "multiple of um" 0 (c mod e.desc.um);
      Alcotest.(check bool) "interior" true (c > 0 && c < 4096))
    cuts

let test_row_cuts_small_region () =
  let e = entry () in
  Alcotest.(check (list int)) "no cut fits" []
    (Polymerize.row_cuts e ~rows:(e.desc.um - 1) ~cols:64 ~max_cuts:6)

let compile_shape ?scorer compiler (m, n, k) =
  Compiler.compile_fresh ?scorer compiler (Operator.gemm ~m ~n ~k ())

let test_polymerize_always_valid () =
  let compiler = Lazy.force gpu_compiler in
  List.iter
    (fun shape ->
      let c = compile_shape compiler shape in
      Alcotest.(check bool) "program validated" true (Program.num_regions c.program >= 1))
    [ (1, 1, 1); (1, 48000, 128); (10752, 1, 500000); (17, 23, 31); (4096, 4096, 4096) ]

let test_polymerize_explores_and_prunes () =
  let compiler = Lazy.force gpu_compiler in
  let c = compile_shape compiler (4096, 1024, 4096) in
  (* The enumerated strategy space is still large, but the analytic
     pruner rules most of it out before scoring. *)
  Alcotest.(check bool) "many candidates considered" true
    (c.candidates + c.pruned + c.pruned_analytic > 50);
  Alcotest.(check bool) "analytic pruning active" true (c.pruned_analytic > 0);
  Alcotest.(check bool) "few candidates actually scored" true
    (c.candidates < c.pruned_analytic);
  Alcotest.(check bool) "search time measured" true (c.search_seconds > 0.)

let test_polymerize_case_study_splits () =
  (* The case-study shape must polymerize into a multi-kernel program on
     the GPU (that is the Section 6 story). *)
  let compiler = Lazy.force gpu_compiler in
  let c = compile_shape compiler (4096, 4096, 4096) in
  Alcotest.(check bool) "multi-region or single with near-perfect fit" true
    (Program.num_regions c.program >= 1)

let test_polymerize_npu_patterns () =
  let compiler = Lazy.force npu_compiler in
  let c = compile_shape compiler (4096, 1024, 4096) in
  Alcotest.(check bool) "npu compiles" true (Program.num_regions c.program >= 1);
  Alcotest.(check bool) "npu explores more patterns" true
    (c.candidates + c.pruned + c.pruned_analytic > 100)

let test_variants_differ () =
  let compiler = Lazy.force gpu_compiler in
  let shape = (4096, 1024, 4096) in
  let full = compile_shape ~scorer:(Polymerize.Model Cost_model.Full) compiler shape in
  let wave = compile_shape ~scorer:(Polymerize.Model Cost_model.Wave_only) compiler shape in
  let pipe = compile_shape ~scorer:(Polymerize.Model Cost_model.Pipe_only) compiler shape in
  let sim c = (Compiler.simulate compiler c).seconds in
  (* MikPoly-Wave favours big kernels, MikPoly-Pipe tiny ones; both should
     be no better than the full model on this shape. *)
  Alcotest.(check bool) "full <= wave" true (sim full <= sim wave +. 1e-12);
  Alcotest.(check bool) "full <= pipe" true (sim full <= sim pipe +. 1e-12)

let test_oracle_at_least_as_good () =
  let compiler = Lazy.force gpu_compiler in
  List.iter
    (fun shape ->
      let model = compile_shape compiler shape in
      let oracle = compile_shape ~scorer:Polymerize.Simulate compiler shape in
      let sim c = (Compiler.simulate compiler c).seconds in
      Alcotest.(check bool) "oracle <= model" true
        (sim oracle <= sim model *. 1.001))
    [ (512, 512, 512); (4096, 1024, 4096); (105, 1024, 2048) ]

let prop_polymerize_valid_random_shapes =
  QCheck.Test.make ~name:"polymerize: valid program for any shape" ~count:40
    QCheck.(triple (int_range 1 5000) (int_range 1 5000) (int_range 1 5000))
    (fun (m, n, k) ->
      let compiler = Lazy.force gpu_compiler in
      let c = compile_shape compiler (m, n, k) in
      (* Program.make already validates; just check it simulates. *)
      (Compiler.simulate compiler c).seconds > 0.)

let prop_polymerize_numerically_correct =
  QCheck.Test.make ~name:"compiled programs compute the exact GEMM" ~count:15
    QCheck.(triple (int_range 1 150) (int_range 1 150) (int_range 1 100))
    (fun (m, n, k) ->
      let compiler = Lazy.force gpu_compiler in
      let c = compile_shape compiler (m, n, k) in
      let open Mikpoly_tensor in
      let rng = Mikpoly_util.Prng.create (m + (1000 * n) + k) in
      let a = Tensor.create (Shape.of_list [ m; k ]) in
      let b = Tensor.create (Shape.of_list [ k; n ]) in
      Tensor.init_random rng a;
      Tensor.init_random rng b;
      Tensor.approx_equal ~tolerance:1e-3
        (Executor.gemm c.program a b)
        (Gemm_ref.gemm a b))

(* --- Search invariants (property tests) --- *)

let prop_region_cost_monotone_in_area =
  QCheck.Test.make ~name:"cost model: region cost nondecreasing in rows" ~count:60
    QCheck.(triple (int_range 1 4000) (int_range 1 4000) (int_range 1 4000))
    (fun (rows, cols, k_len) ->
      let e = entry () in
      Cost_model.region_cost Cost_model.Full e ~rows ~cols ~k_len
      <= Cost_model.region_cost Cost_model.Full e ~rows:(rows + 64) ~cols ~k_len
         +. 1e-9)

let prop_polymerize_no_worse_than_pattern_one =
  QCheck.Test.make
    ~name:"polymerize: predicted cost <= best Pattern-I cost" ~count:25
    QCheck.(triple (int_range 1 3000) (int_range 1 3000) (int_range 1 3000))
    (fun (m, n, k) ->
      let compiler = Lazy.force gpu_compiler in
      let set = Compiler.kernels compiler in
      let config = Compiler.config compiler in
      let op = Operator.gemm ~m ~n ~k () in
      let full = Polymerize.polymerize set config op in
      let p1 =
        Polymerize.polymerize set { config with Config.patterns = [ Pattern.I ] } op
      in
      full.predicted_cost <= p1.predicted_cost +. 1e-6)

let prop_cuts_well_formed =
  QCheck.Test.make ~name:"row cuts: aligned, interior, bounded" ~count:100
    QCheck.(pair (int_range 1 20000) (int_range 1 20000))
    (fun (rows, cols) ->
      let e = entry () in
      let cuts = Polymerize.row_cuts e ~rows ~cols ~max_cuts:6 in
      List.length cuts <= 7
      && List.for_all
           (fun c -> c > 0 && c < rows && c mod e.desc.um = 0)
           cuts)

let prop_compile_deterministic =
  QCheck.Test.make ~name:"polymerize: deterministic for a given shape" ~count:20
    QCheck.(triple (int_range 1 2000) (int_range 1 2000) (int_range 1 2000))
    (fun (m, n, k) ->
      let compiler = Lazy.force gpu_compiler in
      let op = Operator.gemm ~m ~n ~k () in
      let a = Compiler.compile_fresh compiler op in
      let b = Compiler.compile_fresh compiler op in
      Program.to_string a.program = Program.to_string b.program)

(* --- Selfcheck --- *)

let test_selfcheck_passes () =
  let compiler = Lazy.force gpu_compiler in
  (match Selfcheck.check_gemm compiler ~m:123 ~n:45 ~k:67 with
  | Ok () -> ()
  | Error f -> Alcotest.fail f.program);
  match Selfcheck.check_random_shapes compiler ~count:5 ~max_dim:120 with
  | Ok n -> Alcotest.(check int) "all checked" 5 n
  | Error f ->
    let m, n, k = f.shape in
    Alcotest.fail (Printf.sprintf "(%d,%d,%d) diff %g" m n k f.max_abs_diff)

let test_selfcheck_npu () =
  let compiler = Lazy.force npu_compiler in
  match Selfcheck.check_random_shapes compiler ~count:3 ~max_dim:100 with
  | Ok n -> Alcotest.(check int) "npu checked" 3 n
  | Error _ -> Alcotest.fail "npu selfcheck failed"

(* --- Degraded configurations: MikPoly must stay correct --- *)

let test_single_kernel_set_still_universal () =
  (* n_mik = 1: one micro-kernel must cover every shape through padding. *)
  let config = { (Config.default gpu) with Config.n_mik = 1 } in
  let compiler = Compiler.create ~config gpu in
  Alcotest.(check int) "one kernel" 1 (Kernel_set.size (Compiler.kernels compiler));
  List.iter
    (fun (m, n, k) ->
      let op = Operator.gemm ~m ~n ~k () in
      Alcotest.(check bool) "compiles" true
        ((Compiler.simulate compiler (Compiler.compile compiler op)).seconds > 0.))
    [ (1, 1, 1); (4096, 4096, 4096); (3, 70000, 17) ]

let test_degraded_ranking_still_correct () =
  (* The naive ranking retains only large tiles; degenerate shapes must
     still compile (local padding) and compute exactly. *)
  let config =
    { (Config.default gpu) with
      Config.rank_style = Mikpoly_autosched.Autotuner.Mean_tflops }
  in
  let compiler = Compiler.create ~config gpu in
  let op = Operator.gemm ~m:3 ~n:5 ~k:7 () in
  let c = Compiler.compile compiler op in
  let open Mikpoly_tensor in
  let rng = Mikpoly_util.Prng.create 11 in
  let a = Tensor.create (Shape.of_list [ 3; 7 ]) in
  let b = Tensor.create (Shape.of_list [ 7; 5 ]) in
  Tensor.init_random rng a;
  Tensor.init_random rng b;
  Alcotest.(check bool) "numerically exact under heavy padding" true
    (Tensor.approx_equal ~tolerance:1e-3 (Executor.gemm c.program a b)
       (Gemm_ref.gemm a b))

let test_pattern_two_only_falls_back () =
  (* Shapes too small for any split degenerate every Pattern-II candidate;
     the polymerizer must fall back to Pattern I rather than fail. *)
  let config = { (Config.default gpu) with Config.patterns = [ Pattern.II ] } in
  let compiler = Compiler.create ~config gpu in
  let c = Compiler.compile compiler (Operator.gemm ~m:5 ~n:5 ~k:5 ()) in
  Alcotest.(check string) "fell back to Pattern I" "Pattern-I"
    (Pattern.to_string c.pattern)

(* --- Batched GEMM --- *)

let test_batched_gemm_packs_waves () =
  (* 12 attention heads of (128,128,64): one head leaves the device almost
     idle; the batched launch packs the grid and must be far better than
     12 sequential launches. *)
  let compiler = Lazy.force gpu_compiler in
  let single = Operator.gemm ~m:128 ~n:128 ~k:64 () in
  let batched = Operator.batched_gemm ~count:12 ~m:128 ~n:128 ~k:64 () in
  let single_s = Compiler.operator_seconds compiler single in
  let batched_s = Compiler.operator_seconds compiler batched in
  Alcotest.(check bool) "batched beats 12x sequential" true
    (batched_s < 12. *. single_s /. 2.);
  Alcotest.(check bool) "batched costs more than one instance" true
    (batched_s > single_s /. 2.)

let test_batched_gemm_load_scaling () =
  let compiler = Lazy.force gpu_compiler in
  let op = Operator.batched_gemm ~count:7 ~m:256 ~n:256 ~k:64 () in
  let c = Compiler.compile compiler op in
  let load = Program.to_load c.program in
  let per_instance =
    List.fold_left
      (fun acc (r : Mikpoly_ir.Region.t) -> acc + Region.n_tasks r)
      0 c.program.regions
  in
  Alcotest.(check int) "7x the tasks" (7 * per_instance)
    (Mikpoly_accel.Load.total_tasks load)

let test_batched_gemm_executor () =
  let compiler = Lazy.force gpu_compiler in
  let op = Operator.batched_gemm ~count:3 ~m:20 ~n:30 ~k:15 () in
  let c = Compiler.compile compiler op in
  let open Mikpoly_tensor in
  let rng = Mikpoly_util.Prng.create 5 in
  let pairs =
    List.init 3 (fun _ ->
        let a = Tensor.create (Shape.of_list [ 20; 15 ]) in
        let b = Tensor.create (Shape.of_list [ 15; 30 ]) in
        Tensor.init_random rng a;
        Tensor.init_random rng b;
        (a, b))
  in
  let outs = Executor.batched_gemm c.program pairs in
  List.iter2
    (fun (a, b) out ->
      Alcotest.(check bool) "instance matches reference" true
        (Tensor.approx_equal ~tolerance:1e-3 out (Gemm_ref.gemm a b)))
    pairs outs;
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Executor.batched_gemm: instance count mismatch")
    (fun () -> ignore (Executor.batched_gemm c.program (List.tl pairs)))

(* --- Portability: the full stack runs on every hardware preset --- *)

let test_compiles_on_all_presets () =
  List.iter
    (fun hw ->
      let compiler = Compiler.create hw in
      Alcotest.(check bool)
        (hw.Hardware.name ^ " kernel set nonempty")
        true
        (Kernel_set.size (Compiler.kernels compiler) > 0);
      List.iter
        (fun (m, n, k) ->
          let op = Operator.gemm ~m ~n ~k () in
          let c = Compiler.compile compiler op in
          let sim = Compiler.simulate compiler c in
          Alcotest.(check bool)
            (Printf.sprintf "%s (%d,%d,%d) runs" hw.Hardware.name m n k)
            true (sim.seconds > 0.);
          Alcotest.(check bool) "below peak" true
            (Mikpoly_accel.Simulator.tflops sim ~useful_flops:(Operator.flops op)
             <= Hardware.peak_tflops hw Hardware.Matrix))
        [ (512, 512, 512); (37, 1000, 64); (2048, 768, 3072) ])
    Hardware.presets

(* --- Kernel_store --- *)

let tmp_file name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_kernel_store_roundtrip () =
  let config = Config.default gpu in
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let path = tmp_file "mikpoly-kernels-test.txt" in
  Kernel_store.save ~path config set;
  match Kernel_store.load ~path gpu config with
  | Error e -> Alcotest.fail e
  | Ok restored ->
    Alcotest.(check int) "same size" (Kernel_set.size set) (Kernel_set.size restored);
    Array.iteri
      (fun i (e : Kernel_set.entry) ->
        let r = restored.entries.(i) in
        Alcotest.(check string) "same kernel"
          (Mikpoly_accel.Kernel_desc.name e.desc)
          (Mikpoly_accel.Kernel_desc.name r.desc);
        List.iter
          (fun t ->
            let a = Mikpoly_autosched.Perf_model.predict_cycles e.model ~t_steps:t in
            let b = Mikpoly_autosched.Perf_model.predict_cycles r.model ~t_steps:t in
            Alcotest.(check bool) "same prediction" true
              (abs_float (a -. b) /. max 1. a < 1e-6))
          [ 1; 7; 128; 5120 ])
      set.entries;
    Sys.remove path

let test_kernel_store_rejects_mismatch () =
  let config = Config.default gpu in
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let path = tmp_file "mikpoly-kernels-test2.txt" in
  Kernel_store.save ~path config set;
  Alcotest.(check bool) "wrong platform rejected" true
    (Result.is_error (Kernel_store.load ~path npu config));
  Alcotest.(check bool) "wrong config rejected" true
    (Result.is_error
       (Kernel_store.load ~path gpu { config with Config.n_mik = 13 }));
  Sys.remove path

let test_kernel_store_rejects_garbage () =
  let path = tmp_file "mikpoly-kernels-garbage.txt" in
  let oc = open_out path in
  output_string oc "not a kernel set\nat all\nreally\n";
  close_out oc;
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Kernel_store.load ~path gpu (Config.default gpu)));
  Sys.remove path;
  Alcotest.(check bool) "missing file" true
    (Result.is_error
       (Kernel_store.load ~path:"/nonexistent/kernels.txt" gpu (Config.default gpu)))

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_kernel_store_rejects_truncated () =
  let config = Config.default gpu in
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let path = tmp_file "mikpoly-kernels-trunc.txt" in
  Kernel_store.save ~path config set;
  let lines = read_lines path in
  write_lines path (List.filteri (fun i _ -> i < List.length lines - 1) lines);
  Alcotest.(check bool) "truncated file rejected" true
    (Result.is_error (Kernel_store.load ~path gpu config));
  Sys.remove path

let test_kernel_store_rejects_version_bump () =
  let config = Config.default gpu in
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let path = tmp_file "mikpoly-kernels-vers.txt" in
  Kernel_store.save ~path config set;
  (match read_lines path with
  | magic :: rest ->
    (* A future format revision must not parse as the current one. *)
    Alcotest.(check bool) "magic carries a version" true
      (String.length magic > 2
      && String.sub magic (String.length magic - 2) 2 = "v3");
    write_lines path ((String.sub magic 0 (String.length magic - 2) ^ "v4") :: rest)
  | [] -> Alcotest.fail "empty artifact");
  Alcotest.(check bool) "bumped version rejected" true
    (Result.is_error (Kernel_store.load ~path gpu config));
  Sys.remove path

let test_kernel_store_rejects_wrong_fingerprint () =
  let config = Config.default gpu in
  let set = Compiler.kernels (Lazy.force gpu_compiler) in
  let path = tmp_file "mikpoly-kernels-fp.txt" in
  Kernel_store.save ~path config set;
  (* Same platform name, one perturbed microarchitectural constant: the
     header's hardware fingerprint — not just the name — must gate the
     load, so a set tuned for one hardware revision is never silently
     applied to another. *)
  let drifted =
    { gpu with Hardware.fabric_bytes_per_cycle = gpu.fabric_bytes_per_cycle *. 0.9 }
  in
  (match Kernel_store.load ~path drifted config with
  | Ok _ -> Alcotest.fail "perturbed hardware must be rejected"
  | Error e ->
    Alcotest.(check bool) "reason mentions the fingerprint" true
      (String.length e > 0));
  (* The unperturbed device still loads. *)
  Alcotest.(check bool) "original hardware accepted" true
    (Result.is_ok (Kernel_store.load ~path gpu config));
  Sys.remove path

let test_kernel_store_load_or_create_repairs () =
  let config = Config.default gpu in
  let path = tmp_file "mikpoly-kernels-repair.txt" in
  write_lines path [ "corrupt"; "artifact" ];
  (* A broken artifact must fall back to retuning, not crash, and the
     rewritten file must then load cleanly. *)
  let set = Kernel_store.load_or_create ~path gpu config in
  Alcotest.(check bool) "retuned a non-empty set" true (Kernel_set.size set > 0);
  (match Kernel_store.load ~path gpu config with
  | Ok reloaded ->
    Alcotest.(check int) "repaired artifact loads" (Kernel_set.size set)
      (Kernel_set.size reloaded)
  | Error e -> Alcotest.fail ("repaired artifact rejected: " ^ e));
  Sys.remove path

let test_kernel_store_load_or_create () =
  let config = Config.default gpu in
  let path = tmp_file "mikpoly-kernels-loc.txt" in
  if Sys.file_exists path then Sys.remove path;
  let created = Kernel_store.load_or_create ~path gpu config in
  Alcotest.(check bool) "artifact written" true (Sys.file_exists path);
  let reloaded = Kernel_store.load_or_create ~path gpu config in
  Alcotest.(check int) "same size" (Kernel_set.size created)
    (Kernel_set.size reloaded);
  Sys.remove path

(* --- Compiler --- *)

let test_compiler_cache () =
  let compiler = Lazy.force gpu_compiler in
  let op = Operator.gemm ~m:640 ~n:640 ~k:640 () in
  let c1 = Compiler.compile compiler op in
  let c2 = Compiler.compile compiler op in
  Alcotest.(check bool) "cached" true (c1 == c2)

let test_compiler_cache_stats () =
  (* A fresh compiler so hit/miss counters start from zero. *)
  let compiler = Compiler.create Hardware.a100 in
  let s0 = Compiler.cache_stats compiler in
  Alcotest.(check int) "starts empty" 0 s0.Compiler.size;
  Alcotest.(check int) "no hits yet" 0 s0.Compiler.hits;
  let op = Operator.gemm ~m:320 ~n:192 ~k:256 () in
  ignore (Compiler.compile compiler op);
  ignore (Compiler.compile compiler op);
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "one miss" 1 s.Compiler.misses;
  Alcotest.(check int) "one hit" 1 s.Compiler.hits;
  Alcotest.(check int) "one entry" 1 s.Compiler.size;
  Alcotest.(check int) "unbounded cache never evicts" 0 s.Compiler.evictions

let test_compiler_cache_eviction () =
  let compiler = Compiler.create ~cache_capacity:1 Hardware.a100 in
  let op_a = Operator.gemm ~m:320 ~n:192 ~k:256 () in
  let op_b = Operator.gemm ~m:192 ~n:320 ~k:256 () in
  ignore (Compiler.compile compiler op_a);
  ignore (Compiler.compile compiler op_b);
  (* at capacity 1, LRU degenerates to FIFO: compiling B evicted A *)
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "one eviction" 1 s.Compiler.evictions;
  Alcotest.(check int) "still one entry" 1 s.Compiler.size;
  ignore (Compiler.compile compiler op_a);
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "A was gone: three misses" 3 s.Compiler.misses;
  Alcotest.(check int) "two evictions" 2 s.Compiler.evictions;
  Compiler.reset_cache_stats compiler;
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "reset: hits" 0 s.Compiler.hits;
  Alcotest.(check int) "reset: misses" 0 s.Compiler.misses;
  Alcotest.(check int) "reset: evictions" 0 s.Compiler.evictions;
  (* cache contents survive a stats reset *)
  ignore (Compiler.compile compiler op_a);
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "entry kept across reset" 1 s.Compiler.hits;
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Compiler.create: negative cache capacity") (fun () ->
      ignore (Compiler.create ~cache_capacity:(-1) Hardware.a100))

let test_compiler_overhead_accounting () =
  let compiler = Lazy.force gpu_compiler in
  let op = Operator.gemm ~m:4096 ~n:1024 ~k:4096 () in
  let plain = Compiler.operator_seconds compiler op in
  let with_oh = Compiler.operator_seconds_with_overhead compiler op in
  Alcotest.(check bool) "overhead adds" true (with_oh > plain)

let test_compiler_cache_lru_touch_on_hit () =
  let compiler = Compiler.create ~cache_capacity:2 Hardware.a100 in
  let op_a = Operator.gemm ~m:320 ~n:192 ~k:256 () in
  let op_b = Operator.gemm ~m:192 ~n:320 ~k:256 () in
  let op_c = Operator.gemm ~m:256 ~n:256 ~k:256 () in
  ignore (Compiler.compile compiler op_a);
  ignore (Compiler.compile compiler op_b);
  (* hitting A refreshes its recency, so B becomes the LRU victim — the
     behaviour that distinguishes true LRU from insertion-order FIFO *)
  ignore (Compiler.compile compiler op_a);
  ignore (Compiler.compile compiler op_c);
  Alcotest.(check bool) "A survived its touch" true (Compiler.cached compiler op_a);
  Alcotest.(check bool) "B (least recent) evicted" false
    (Compiler.cached compiler op_b);
  Alcotest.(check bool) "C present" true (Compiler.cached compiler op_c);
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "one hit" 1 s.Compiler.hits;
  Alcotest.(check int) "three misses" 3 s.Compiler.misses;
  Alcotest.(check int) "one eviction" 1 s.Compiler.evictions

let test_compiler_invalidate () =
  let compiler = Compiler.create Hardware.a100 in
  let op_a = Operator.gemm ~m:320 ~n:192 ~k:256 () in
  let op_b = Operator.gemm ~m:192 ~n:320 ~k:256 () in
  ignore (Compiler.compile compiler op_a);
  ignore (Compiler.compile compiler op_b);
  Alcotest.(check bool) "A dropped" true
    (Compiler.invalidate compiler (320, 192, 256));
  Alcotest.(check bool) "A gone" false (Compiler.cached compiler op_a);
  Alcotest.(check bool) "B untouched" true (Compiler.cached compiler op_b);
  Alcotest.(check bool) "double drop is a no-op" false
    (Compiler.invalidate compiler (320, 192, 256));
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "one invalidation" 1 s.Compiler.invalidations;
  (* Invalidations are not capacity evictions: the two stats stay apart. *)
  Alcotest.(check int) "no evictions" 0 s.Compiler.evictions;
  Alcotest.(check int) "one entry left" 1 s.Compiler.size;
  ignore (Compiler.compile compiler op_a);
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "A recompiled after invalidation: two misses + one" 3
    s.Compiler.misses

let test_compiler_invalidate_if () =
  let compiler = Compiler.create Hardware.a100 in
  let shapes = [ (320, 192, 256); (192, 320, 256); (256, 256, 512) ] in
  List.iter
    (fun (m, n, k) -> ignore (Compiler.compile compiler (Operator.gemm ~m ~n ~k ())))
    shapes;
  let dropped =
    Compiler.invalidate_if compiler (fun shape _ ->
        match shape with m, _, _ -> m >= 256)
  in
  Alcotest.(check int) "two predicates matched" 2 dropped;
  Alcotest.(check bool) "survivor present" true
    (Compiler.cached compiler (Operator.gemm ~m:192 ~n:320 ~k:256 ()));
  Alcotest.(check bool) "victim gone" false
    (Compiler.cached compiler (Operator.gemm ~m:320 ~n:192 ~k:256 ()));
  let s = Compiler.cache_stats compiler in
  Alcotest.(check int) "invalidations counted" 2 s.Compiler.invalidations;
  Alcotest.(check int) "size shrank" 1 s.Compiler.size;
  Alcotest.(check int) "nothing matches now" 0
    (Compiler.invalidate_if compiler (fun (m, _, _) _ -> m >= 256))

(* --- Parallel search determinism --- *)

(* The domain-parallel search contract: the chosen program, pattern and
   predicted cost are bit-identical at every job count. The
   candidates/pruned tallies are intentionally excluded — with a shared
   bound they depend on domain scheduling. *)
let compiled_fingerprint (c : Polymerize.compiled) =
  ( Pattern.to_string c.Polymerize.pattern,
    c.Polymerize.predicted_cost,
    Program.to_string c.Polymerize.program )

let check_jobs_invariant ?scorer compiler cases =
  let kernels = Compiler.kernels compiler in
  let config = Compiler.config compiler in
  List.iter
    (fun (case : Mikpoly_workloads.Gemm_case.t) ->
      let op = Operator.gemm ~m:case.m ~n:case.n ~k:case.k () in
      let at jobs =
        compiled_fingerprint
          (Polymerize.polymerize ?scorer ~instrument:false ~jobs kernels
             config op)
      in
      Alcotest.(check (triple string (float 0.) string))
        (Mikpoly_workloads.Gemm_case.to_string case)
        (at 1) (at 4))
    cases

let test_parallel_search_deterministic_gpu () =
  let cases =
    List.filteri (fun i _ -> i mod 16 = 0) (Mikpoly_workloads.Suite.table3_gemm ())
  in
  check_jobs_invariant (Lazy.force gpu_compiler) cases

let test_parallel_search_deterministic_npu () =
  (* all nine patterns in play *)
  let cases =
    List.filteri (fun i _ -> i mod 64 = 0) (Mikpoly_workloads.Suite.table3_gemm ())
  in
  check_jobs_invariant (Lazy.force npu_compiler) cases

let test_parallel_oracle_deterministic () =
  let cases =
    List.filteri (fun i _ -> i mod 128 = 0) (Mikpoly_workloads.Suite.table3_gemm ())
  in
  check_jobs_invariant ~scorer:Polymerize.Simulate (Lazy.force gpu_compiler)
    cases

(* --- Analytic pruning soundness and batched search (this PR) --- *)

let prune_arms compiler (m, n, k) =
  let set = Compiler.kernels compiler in
  let config = Compiler.config compiler in
  let op = Operator.gemm ~m ~n ~k () in
  let at analytic =
    Polymerize.polymerize ~instrument:false set
      { config with Config.analytic_prune = analytic }
      op
  in
  (at true, at false)

let prop_prune_sound_gpu =
  QCheck.Test.make
    ~name:"analytic pruning: identical program and cost (GPU)" ~count:30
    QCheck.(triple (int_range 1 5000) (int_range 1 5000) (int_range 1 5000))
    (fun shape ->
      let pruned, unpruned = prune_arms (Lazy.force gpu_compiler) shape in
      compiled_fingerprint pruned = compiled_fingerprint unpruned)

let prop_prune_sound_npu =
  QCheck.Test.make
    ~name:"analytic pruning: identical program and cost (NPU, 9 patterns)"
    ~count:12
    QCheck.(triple (int_range 1 3000) (int_range 1 3000) (int_range 1 3000))
    (fun shape ->
      let pruned, unpruned = prune_arms (Lazy.force npu_compiler) shape in
      compiled_fingerprint pruned = compiled_fingerprint unpruned)

let test_prune_candidates_reduction () =
  (* The acceptance bar: analytic pruning must cut scored candidates at
     least 5x on the headline shapes while keeping the program. *)
  let compiler = Lazy.force gpu_compiler in
  List.iter
    (fun shape ->
      let pruned, unpruned = prune_arms compiler shape in
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d,%d): >= 5x fewer candidates scored"
           (let a, _, _ = shape in a)
           (let _, b, _ = shape in b)
           (let _, _, c = shape in c))
        true
        (5 * pruned.Polymerize.candidates <= unpruned.Polymerize.candidates);
      Alcotest.(check (triple string (float 0.) string))
        "same program" (compiled_fingerprint unpruned)
        (compiled_fingerprint pruned))
    [ (4096, 1024, 4096); (4096, 4096, 4096); (512, 768, 1024) ]

let test_prune_selfcheck_oracle () =
  let compiler = Lazy.force gpu_compiler in
  match Selfcheck.check_prune_random compiler ~seed:7 ~count:6 with
  | Ok pruned ->
    Alcotest.(check bool) "oracle saw analytic pruning" true (pruned > 0)
  | Error f ->
    Alcotest.failf "prune oracle diverged on (%d,%d,%d): %g vs %g"
      (let a, _, _ = f.Selfcheck.pf_shape in a)
      (let _, b, _ = f.Selfcheck.pf_shape in b)
      (let _, _, c = f.Selfcheck.pf_shape in c)
      f.Selfcheck.pf_pruned_cost f.Selfcheck.pf_unpruned_cost

let test_search_batch_matches_polymerize () =
  let compiler = Lazy.force gpu_compiler in
  let set = Compiler.kernels compiler in
  let config = Compiler.config compiler in
  let shapes =
    [| (512, 512, 512); (4096, 1024, 4096); (17, 23, 31); (1, 48000, 128);
       (105, 1024, 2048); (768, 3072, 768) |]
  in
  let ops =
    Array.map (fun (m, n, k) -> Operator.gemm ~m ~n ~k ()) shapes
  in
  let expect =
    Array.map
      (fun op ->
        compiled_fingerprint (Polymerize.polymerize ~instrument:false set config op))
      ops
  in
  let at ?min_chunk jobs =
    Array.map compiled_fingerprint
      (Polymerize.search_batch ~instrument:false ~jobs ?min_chunk set config ops)
  in
  Alcotest.(check bool) "jobs=1 matches per-shape polymerize" true
    (at 1 = expect);
  Alcotest.(check bool) "jobs=4 matches per-shape polymerize" true
    (at ~min_chunk:1 4 = expect);
  Alcotest.(check int) "empty batch" 0
    (Array.length (Polymerize.search_batch ~jobs:4 set config [||]));
  Alcotest.check_raises "min_chunk validated"
    (Invalid_argument "Polymerize.search_batch: min_chunk must be >= 1")
    (fun () -> ignore (Polymerize.search_batch ~min_chunk:0 set config ops))

(* Shapes sharing one reduction extent share one [Strategy_space.view]
   inside [search_batch]; sharing is a pure memoization, so every search
   statistic — candidates scored, both pruning tallies, the first-hit
   index — must match the per-shape searches exactly, not just the chosen
   program. (search_seconds is wall time and excluded.) *)
let test_search_batch_shared_view_tallies () =
  let compiler = Lazy.force gpu_compiler in
  let set = Compiler.kernels compiler in
  let config = Compiler.config compiler in
  let shapes =
    (* same K across the batch: one shared view serves all of them *)
    [| (512, 512, 768); (96, 2048, 768); (1024, 129, 768); (333, 77, 768) |]
  in
  let ops = Array.map (fun (m, n, k) -> Operator.gemm ~m ~n ~k ()) shapes in
  let tallies (c : Polymerize.compiled) =
    ( Program.to_string c.Polymerize.program,
      c.Polymerize.predicted_cost,
      c.Polymerize.candidates,
      c.Polymerize.pruned,
      c.Polymerize.pruned_analytic,
      c.Polymerize.first_hit,
      c.Polymerize.deadline_hit )
  in
  let expect =
    Array.map
      (fun op ->
        tallies (Polymerize.polymerize ~instrument:false set config op))
      ops
  in
  let batched =
    Array.map tallies
      (Polymerize.search_batch ~instrument:false ~jobs:1 ~min_chunk:1 set
         config ops)
  in
  Alcotest.(check bool) "tallies identical under shared views" true
    (batched = expect)

let test_kernel_set_concurrent_create () =
  Kernel_set.clear_cache ();
  let config = Config.default gpu in
  let tunes () =
    match
      Mikpoly_telemetry.Metrics.find
        (Mikpoly_telemetry.Metrics.snapshot ())
        "offline.tunes"
    with
    | Some (Mikpoly_telemetry.Metrics.Counter { value; _ }) -> value
    | _ -> 0
  in
  let before = tunes () in
  let d1 = Domain.spawn (fun () -> Kernel_set.create gpu config) in
  let d2 = Domain.spawn (fun () -> Kernel_set.create gpu config) in
  let s1 = Domain.join d1 and s2 = Domain.join d2 in
  Alcotest.(check bool) "both domains share the memoized set" true (s1 == s2);
  Alcotest.(check int) "offline stage ran exactly once" 1 (tunes () - before)

let () =
  Alcotest.run "core"
    [
      ( "pattern",
        [
          Alcotest.test_case "region counts" `Quick test_pattern_region_counts;
          Alcotest.test_case "degenerate cuts" `Quick test_pattern_degenerate_cuts;
          Alcotest.test_case "wrong arity" `Quick test_pattern_wrong_arity;
          Alcotest.test_case "platform defaults" `Quick test_pattern_defaults;
          qtest prop_patterns_partition;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "with_path" `Quick test_config_with_path;
        ] );
      ( "kernel_set",
        [
          Alcotest.test_case "size and cache" `Quick test_kernel_set_size_and_cache;
          Alcotest.test_case "find" `Quick test_kernel_set_find;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "Eq. 2 identities" `Quick test_cost_model_identities;
          Alcotest.test_case "program sum" `Quick test_cost_model_program_sum;
          Alcotest.test_case "correlates with simulator" `Quick
            test_cost_model_correlates_with_simulator;
        ] );
      ( "polymerize",
        [
          Alcotest.test_case "row cuts aligned" `Quick test_row_cuts_aligned;
          Alcotest.test_case "row cuts small region" `Quick test_row_cuts_small_region;
          Alcotest.test_case "always valid" `Quick test_polymerize_always_valid;
          Alcotest.test_case "explores and prunes" `Quick
            test_polymerize_explores_and_prunes;
          Alcotest.test_case "case study shape" `Quick test_polymerize_case_study_splits;
          Alcotest.test_case "npu patterns" `Quick test_polymerize_npu_patterns;
          Alcotest.test_case "ablation variants" `Quick test_variants_differ;
          Alcotest.test_case "oracle at least as good" `Quick
            test_oracle_at_least_as_good;
          qtest prop_polymerize_valid_random_shapes;
          qtest prop_polymerize_numerically_correct;
        ] );
      ( "search_invariants",
        [
          qtest prop_region_cost_monotone_in_area;
          qtest prop_polymerize_no_worse_than_pattern_one;
          qtest prop_cuts_well_formed;
          qtest prop_compile_deterministic;
        ] );
      ( "selfcheck",
        [
          Alcotest.test_case "gpu" `Quick test_selfcheck_passes;
          Alcotest.test_case "npu" `Quick test_selfcheck_npu;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "single-kernel set universal" `Quick
            test_single_kernel_set_still_universal;
          Alcotest.test_case "naive ranking still exact" `Quick
            test_degraded_ranking_still_correct;
          Alcotest.test_case "Pattern-II-only falls back" `Quick
            test_pattern_two_only_falls_back;
        ] );
      ( "batched",
        [
          Alcotest.test_case "packs waves" `Quick test_batched_gemm_packs_waves;
          Alcotest.test_case "load scaling" `Quick test_batched_gemm_load_scaling;
          Alcotest.test_case "executor" `Quick test_batched_gemm_executor;
        ] );
      ( "portability",
        [ Alcotest.test_case "all hardware presets" `Slow test_compiles_on_all_presets ] );
      ( "kernel_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_kernel_store_roundtrip;
          Alcotest.test_case "rejects mismatch" `Quick
            test_kernel_store_rejects_mismatch;
          Alcotest.test_case "rejects garbage" `Quick test_kernel_store_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick
            test_kernel_store_rejects_truncated;
          Alcotest.test_case "rejects version bump" `Quick
            test_kernel_store_rejects_version_bump;
          Alcotest.test_case "rejects wrong fingerprint" `Quick
            test_kernel_store_rejects_wrong_fingerprint;
          Alcotest.test_case "load_or_create" `Quick test_kernel_store_load_or_create;
          Alcotest.test_case "load_or_create repairs" `Quick
            test_kernel_store_load_or_create_repairs;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "cache" `Quick test_compiler_cache;
          Alcotest.test_case "cache stats" `Quick test_compiler_cache_stats;
          Alcotest.test_case "cache eviction" `Quick
            test_compiler_cache_eviction;
          Alcotest.test_case "LRU touch on hit" `Quick
            test_compiler_cache_lru_touch_on_hit;
          Alcotest.test_case "invalidate" `Quick test_compiler_invalidate;
          Alcotest.test_case "invalidate_if" `Quick test_compiler_invalidate_if;
          Alcotest.test_case "overhead accounting" `Quick
            test_compiler_overhead_accounting;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "search jobs-invariant (GPU suite)" `Quick
            test_parallel_search_deterministic_gpu;
          Alcotest.test_case "search jobs-invariant (NPU, 9 patterns)" `Quick
            test_parallel_search_deterministic_npu;
          Alcotest.test_case "oracle scorer jobs-invariant" `Quick
            test_parallel_oracle_deterministic;
          Alcotest.test_case "concurrent offline create tunes once" `Quick
            test_kernel_set_concurrent_create;
        ] );
      ( "strategy_space",
        [
          qtest prop_prune_sound_gpu;
          qtest prop_prune_sound_npu;
          Alcotest.test_case "candidates scored drop >= 5x" `Quick
            test_prune_candidates_reduction;
          Alcotest.test_case "selfcheck prune oracle" `Quick
            test_prune_selfcheck_oracle;
          Alcotest.test_case "search_batch matches polymerize" `Quick
            test_search_batch_matches_polymerize;
          Alcotest.test_case "shared views leave tallies unchanged" `Quick
            test_search_batch_shared_view_tallies;
        ] );
    ]
