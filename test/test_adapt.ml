(* Tests for the online adaptation subsystem: calibration fitting, the
   Page–Hinkley drift detector, profile persistence (round-trip and
   wrong-hardware rejection), the adapter's drift reaction end to end on
   the drift scenario, and determinism of the whole loop across job
   counts. *)

open Mikpoly_adapt
module Hardware = Mikpoly_accel.Hardware
module Compiler = Mikpoly_core.Compiler
module Config = Mikpoly_core.Config

let gpu = Hardware.a100

let gpu_compiler = lazy (Compiler.create gpu)

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- Calibration --- *)

let test_calibration_scale () =
  let cal =
    Calibration.fit ~fingerprint:"fp" [ ((16, 16, 16), [ (2., 5.) ]) ]
  in
  (match Calibration.find cal (16, 16, 16) with
  | Some (Calibration.Scale a) ->
    Alcotest.(check (float 1e-9)) "ratio" 2.5 a
  | _ -> Alcotest.fail "expected Scale");
  Alcotest.(check (float 1e-9)) "apply" 10. (Calibration.apply cal (16, 16, 16) 4.);
  Alcotest.(check (float 1e-9)) "unknown kernel is identity" 4.
    (Calibration.apply cal (32, 32, 16) 4.)

let test_calibration_affine () =
  let samples = [ (1., 3.); (2., 5.); (3., 7.) ] in
  let cal = Calibration.fit ~fingerprint:"fp" [ ((32, 32, 16), samples) ] in
  (match Calibration.find cal (32, 32, 16) with
  | Some (Calibration.Affine (a, b)) ->
    Alcotest.(check (float 1e-6)) "slope" 2. a;
    Alcotest.(check (float 1e-6)) "intercept" 1. b
  | _ -> Alcotest.fail "expected Affine");
  Alcotest.(check (float 1e-6)) "extrapolates" 9.
    (Calibration.apply cal (32, 32, 16) 4.)

let test_calibration_knots () =
  (* Four distinct operating points on a convex curve: the piecewise fit
     must reproduce the samples themselves. *)
  let samples = [ (1., 2.); (2., 5.); (4., 12.); (8., 30.) ] in
  let cal = Calibration.fit ~fingerprint:"fp" [ ((64, 64, 16), samples) ] in
  (match Calibration.find cal (64, 64, 16) with
  | Some (Calibration.Knots _) -> ()
  | _ -> Alcotest.fail "expected Knots");
  List.iter
    (fun (x, y) ->
      Alcotest.(check (float 0.3)) "interpolates" y
        (Calibration.apply cal (64, 64, 16) x))
    samples

let test_calibration_clamps () =
  let cal =
    Calibration.of_curves ~fingerprint:"fp"
      [ ((16, 16, 16), Calibration.Affine (1., -10.)) ]
  in
  Alcotest.(check (float 1e-9)) "clamped to zero" 0.
    (Calibration.apply cal (16, 16, 16) 5.)

let test_calibration_duplicate_abscissae () =
  (* Same predicted value observed twice: condensed to the mean, fit as a
     single-point scale — never a crash from Piecewise's duplicate check. *)
  let cal =
    Calibration.fit ~fingerprint:"fp"
      [ ((16, 16, 16), [ (2., 3.); (2., 5.) ]) ]
  in
  match Calibration.find cal (16, 16, 16) with
  | Some (Calibration.Scale a) -> Alcotest.(check (float 1e-9)) "mean ratio" 2. a
  | _ -> Alcotest.fail "expected Scale"

let test_calibration_negative_slope_falls_back () =
  (* A decreasing relation would make the corrected cost non-monotone in
     the raw cost; the fit must fall back to a scale. *)
  let cal =
    Calibration.fit ~fingerprint:"fp"
      [ ((16, 16, 16), [ (1., 10.); (2., 6.); (3., 2.) ]) ]
  in
  match Calibration.find cal (16, 16, 16) with
  | Some (Calibration.Scale _) -> ()
  | _ -> Alcotest.fail "expected Scale fallback"

(* --- Drift detection --- *)

let test_drift_constant_stream_never_fires () =
  let d = Drift.create () in
  for _ = 1 to 200 do
    Alcotest.(check bool) "no fire" false (Drift.observe d 0.3)
  done;
  Alcotest.(check (float 1e-6)) "mean absorbs bias" 0.3 (Drift.mean d)

let test_drift_upward_shift_fires () =
  let d = Drift.create () in
  for _ = 1 to 30 do
    ignore (Drift.observe d 0.)
  done;
  let fired = ref false in
  let steps = ref 0 in
  while (not !fired) && !steps < 50 do
    incr steps;
    fired := Drift.observe d 0.8
  done;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check bool) "fired promptly" true (!steps <= 10);
  Alcotest.(check int) "reset on fire" 0 (Drift.count d)

let test_drift_downward_shift_fires () =
  let d = Drift.create () in
  for _ = 1 to 30 do
    ignore (Drift.observe d 0.5)
  done;
  let fired = ref false in
  for _ = 1 to 50 do
    if not !fired then fired := Drift.observe d (-0.4)
  done;
  Alcotest.(check bool) "fired" true !fired

let test_drift_noise_tolerance () =
  (* Alternating small residuals around a stable mean must not fire. *)
  let d = Drift.create () in
  let fired = ref false in
  for i = 1 to 200 do
    let x = if i mod 2 = 0 then 0.12 else 0.08 in
    if Drift.observe d x then fired := true
  done;
  Alcotest.(check bool) "stable noisy stream" false !fired

(* --- Profile store --- *)

let sample_calibration fp =
  Calibration.fit ~fingerprint:fp
    [
      ((16, 16, 16), [ (2., 5.) ]);
      ((32, 32, 16), [ (1., 3.); (2., 5.); (3., 7.) ]);
      ((64, 64, 16), [ (1., 2.); (2., 5.); (4., 12.); (8., 30.) ]);
    ]

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_profile_roundtrip () =
  let path = temp_path "mikpoly_test_profile.cal" in
  let cal = sample_calibration (Hardware.fingerprint gpu) in
  Profile_store.save ~path gpu cal;
  (match Profile_store.load ~path gpu with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check bool) "identical corrections" true
      (Calibration.equal cal loaded);
    (* Canonical serialization: saving the loaded profile reproduces the
       artifact byte for byte. *)
    let first = read_file path in
    Profile_store.save ~path gpu loaded;
    Alcotest.(check string) "byte-identical re-save" first (read_file path));
  Sys.remove path

let test_profile_rejects_wrong_hardware () =
  let path = temp_path "mikpoly_test_profile_hw.cal" in
  let cal = sample_calibration (Hardware.fingerprint gpu) in
  Profile_store.save ~path gpu cal;
  (* Same device name, different microarchitectural constants: the
     fingerprint line must reject it. *)
  let drifted = Scenario.drifted_hardware ~severity:0.3 gpu in
  (match Profile_store.load ~path drifted with
  | Ok _ -> Alcotest.fail "wrong-hardware profile must be rejected"
  | Error e ->
    Alcotest.(check bool) "mentions hardware" true
      (String.length e > 0));
  (* A genuinely different platform is rejected on the name line. *)
  (match Profile_store.load ~path Hardware.v100 with
  | Ok _ -> Alcotest.fail "wrong-platform profile must be rejected"
  | Error _ -> ());
  Sys.remove path

let test_profile_rejects_version_bump () =
  let path = temp_path "mikpoly_test_profile_v.cal" in
  let cal = sample_calibration (Hardware.fingerprint gpu) in
  Profile_store.save ~path gpu cal;
  let contents = read_file path in
  Alcotest.(check bool) "current version is v2" true
    (String.length Profile_store.magic >= 2
    && String.sub Profile_store.magic
         (String.length Profile_store.magic - 2)
         2
       = "v2");
  let oc = open_out path in
  output_string oc
    ("mikpoly-calibration v3"
    ^ String.sub contents (String.length Profile_store.magic)
        (String.length contents - String.length Profile_store.magic));
  close_out oc;
  (match Profile_store.load ~path gpu with
  | Ok _ -> Alcotest.fail "version-bumped profile must be rejected"
  | Error _ -> ());
  Sys.remove path

let test_profile_rejects_garbage () =
  let path = temp_path "mikpoly_test_profile_g.cal" in
  let oc = open_out path in
  output_string oc "not a calibration file\n";
  close_out oc;
  (match Profile_store.load ~path gpu with
  | Ok _ -> Alcotest.fail "garbage must be rejected"
  | Error _ -> ());
  Sys.remove path

(* --- Adapter and scenario --- *)

let test_adapter_stable_no_drift () =
  (* Serving on the hardware the model was tuned for: residuals are a
     stable model bias, the detector must not fire and no correction may
     be installed. *)
  let compiler = Compiler.create gpu in
  let adapter = Adapter.create compiler in
  let shapes = [ (512, 512, 256); (384, 768, 256); (1024, 256, 512) ] in
  for i = 0 to 23 do
    ignore (Adapter.observe_shape adapter (List.nth shapes (i mod 3)))
  done;
  let stats = Adapter.stats adapter in
  Alcotest.(check int) "observations" 24 stats.observations;
  Alcotest.(check int) "no drift events" 0 stats.drift_events;
  Alcotest.(check bool) "no correction installed" true
    (Adapter.correction adapter = None);
  Alcotest.(check (float 1e-9)) "no stall" 0.
    (Adapter.drain_stall_seconds adapter)

let scenario_result = lazy (Scenario.run ~seed:0xADA (Lazy.force gpu_compiler))

let test_scenario_detects_drift () =
  let r = Lazy.force scenario_result in
  Alcotest.(check bool) "drift detected" true (r.drift_events >= 1);
  Alcotest.(check bool) "reaction recorded" true (r.reaction_observations >= 1);
  Alcotest.(check bool) "reaction prompt" true (r.reaction_observations <= 16);
  let stats = Adapter.stats r.adapter in
  Alcotest.(check bool) "programs invalidated" true (stats.invalidated >= 1);
  Alcotest.(check bool) "hot shapes recompiled" true (stats.recompiles >= 1);
  Alcotest.(check bool) "stall charged" true (r.stall_seconds > 0.)

let test_scenario_improves_ranking () =
  let r = Lazy.force scenario_result in
  Alcotest.(check bool)
    (Printf.sprintf "tau improves (%.4f -> %.4f)" r.before.tau r.after.tau)
    true
    (r.after.tau > r.before.tau);
  Alcotest.(check bool)
    (Printf.sprintf "regret no worse (%.4f -> %.4f)" r.before.top1_regret
       r.after.top1_regret)
    true
    (r.after.top1_regret <= r.before.top1_regret +. 1e-9)

let test_scenario_deterministic_across_jobs () =
  (* The full adaptation loop — same observations, different search
     parallelism — must produce a bit-identical calibration profile and
     identical recompiled programs. *)
  let run jobs =
    let config = { (Config.default gpu) with search_jobs = jobs } in
    let compiler = Compiler.create ~config gpu in
    let r = Scenario.run ~seed:0xADA compiler in
    let programs =
      List.map
        (fun (m, n, k) ->
          Mikpoly_ir.Program.to_string
            (Compiler.compile compiler (Mikpoly_ir.Operator.gemm ~m ~n ~k ()))
              .program)
        r.holdout
    in
    (Calibration.to_string (Adapter.calibration r.adapter), programs, r)
  in
  let cal1, progs1, r1 = run 1 in
  let cal4, progs4, r4 = run 4 in
  Alcotest.(check string) "bit-identical calibration" cal1 cal4;
  Alcotest.(check (list string)) "bit-identical recompiled programs" progs1
    progs4;
  Alcotest.(check int) "same drift events" r1.drift_events r4.drift_events;
  Alcotest.(check (float 1e-12)) "same tau after" r1.after.tau r4.after.tau

let test_adapter_profile_roundtrip_through_store () =
  let r = Lazy.force scenario_result in
  let path = temp_path "mikpoly_test_adapter_profile.cal" in
  Adapter.save_profile r.adapter ~path;
  (* A fresh adapter on the same (drifted) execution hardware warm-starts
     from the artifact with identical corrections. *)
  let compiler = Lazy.force gpu_compiler in
  let fresh = Adapter.create ~register:false compiler in
  Adapter.set_execution_hardware fresh
    (Scenario.drifted_hardware ~severity:0.35 gpu);
  (match Adapter.load_profile fresh ~path with
  | Error e -> Alcotest.fail e
  | Ok () ->
    (* Canonical-form comparison: fitted floats need not survive the
       artifact's %.9g encoding bit for bit, but the serialized profile —
       what any later save would write — must. *)
    Alcotest.(check string) "identical corrections"
      (Calibration.to_string (Adapter.calibration r.adapter))
      (Calibration.to_string (Adapter.calibration fresh)));
  (* And a mismatched execution device refuses the artifact. *)
  let mismatched = Adapter.create ~register:false compiler in
  (match Adapter.load_profile mismatched ~path with
  | Ok () -> Alcotest.fail "wrong-hardware warm start must fail"
  | Error _ -> ());
  Sys.remove path;
  Compiler.set_observer compiler None;
  Compiler.set_correction compiler None

let () =
  Alcotest.run "adapt"
    [
      ( "calibration",
        [
          Alcotest.test_case "single point becomes scale" `Quick
            test_calibration_scale;
          Alcotest.test_case "few points become affine" `Quick
            test_calibration_affine;
          Alcotest.test_case "many points become knots" `Quick
            test_calibration_knots;
          Alcotest.test_case "corrections clamp at zero" `Quick
            test_calibration_clamps;
          Alcotest.test_case "duplicate abscissae condensed" `Quick
            test_calibration_duplicate_abscissae;
          Alcotest.test_case "negative slope falls back" `Quick
            test_calibration_negative_slope_falls_back;
        ] );
      ( "drift",
        [
          Alcotest.test_case "constant bias never fires" `Quick
            test_drift_constant_stream_never_fires;
          Alcotest.test_case "upward shift fires" `Quick
            test_drift_upward_shift_fires;
          Alcotest.test_case "downward shift fires" `Quick
            test_drift_downward_shift_fires;
          Alcotest.test_case "stable noise tolerated" `Quick
            test_drift_noise_tolerance;
        ] );
      ( "profile store",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "rejects wrong hardware" `Quick
            test_profile_rejects_wrong_hardware;
          Alcotest.test_case "rejects version bump" `Quick
            test_profile_rejects_version_bump;
          Alcotest.test_case "rejects garbage" `Quick
            test_profile_rejects_garbage;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "stable serving never adapts" `Quick
            test_adapter_stable_no_drift;
          Alcotest.test_case "scenario detects drift" `Quick
            test_scenario_detects_drift;
          Alcotest.test_case "calibration improves ranking" `Quick
            test_scenario_improves_ranking;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_scenario_deterministic_across_jobs;
          Alcotest.test_case "profile roundtrip via adapter" `Quick
            test_adapter_profile_roundtrip_through_store;
        ] );
    ]
