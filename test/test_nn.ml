(* Tests for the model zoo and inference engine: operator-graph builders
   must enumerate the exact GEMM shapes the paper's models produce, and
   the engine must account time, overhead and invalid runs correctly. *)

open Mikpoly_nn
open Mikpoly_accel

let gpu = Hardware.a100

(* --- Op --- *)

let test_op_constructors () =
  Alcotest.(check bool) "gemm ok" true
    (match Op.gemm ~label:"x" ~m:1 ~n:2 ~k:3 () with Op.Gemm _ -> true | _ -> false);
  Alcotest.check_raises "bad gemm" (Invalid_argument "Op.gemm: non-positive dimension")
    (fun () -> ignore (Op.gemm ~label:"x" ~m:0 ~n:2 ~k:3 ()));
  Alcotest.check_raises "bad comm" (Invalid_argument "Op.comm: invalid parameters")
    (fun () -> ignore (Op.comm ~label:"x" ~bytes:1. ~gbps:0.))

let test_op_total_flops () =
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"a" ~m:2 ~n:3 ~k:4 ();
        Op.gemm ~repeat:2 ~label:"b" ~m:1 ~n:1 ~k:1 ();
        Op.mem ~label:"m" ~bytes:100.;
      ]
  in
  Alcotest.(check (float 0.)) "flops" ((2. *. 24.) +. 4.) (Op.total_gemm_flops g)

let test_op_gemm_shapes_dedup () =
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"a" ~m:2 ~n:3 ~k:4 ();
        Op.gemm ~label:"b" ~m:2 ~n:3 ~k:4 ();
        Op.gemm ~label:"c" ~m:5 ~n:3 ~k:4 ();
      ]
  in
  Alcotest.(check int) "distinct shapes" 2 (List.length (Op.gemm_shapes g))

(* --- Transformer --- *)

let count_gemms g =
  List.fold_left
    (fun acc op -> match op with Op.Gemm _ -> acc + 1 | _ -> acc)
    0 g.Op.ops

let test_bert_structure () =
  let g = Transformer.graph Transformer.bert_base ~seq_len:128 in
  (* 12 layers x 6 GEMM families (qkv, scores, ctx, proj, ffn_up, ffn_down). *)
  Alcotest.(check int) "gemm count" (12 * 6) (count_gemms g)

let test_bert_shapes () =
  let g = Transformer.graph Transformer.bert_base ~seq_len:128 in
  let shapes = Op.gemm_shapes g in
  Alcotest.(check bool) "qkv shape" true (List.mem (128, 3 * 768, 768) shapes);
  Alcotest.(check bool) "attention scores" true (List.mem (128, 128, 64) shapes);
  Alcotest.(check bool) "ffn up" true (List.mem (128, 3072, 768) shapes);
  Alcotest.(check bool) "ffn down" true (List.mem (128, 768, 3072) shapes)

let test_distilbert_smaller () =
  let bert = Transformer.graph Transformer.bert_base ~seq_len:64 in
  let distil = Transformer.graph Transformer.distilbert ~seq_len:64 in
  Alcotest.(check bool) "half the layers" true
    (Op.total_gemm_flops distil < Op.total_gemm_flops bert)

let test_albert_dimensions () =
  let g = Transformer.graph Transformer.albert_xlarge ~seq_len:32 in
  let shapes = Op.gemm_shapes g in
  Alcotest.(check bool) "hidden 2048" true (List.mem (32, 3 * 2048, 2048) shapes)

let test_transformer_invalid_seq () =
  Alcotest.check_raises "seq 0" (Invalid_argument "Transformer.graph: seq_len < 1")
    (fun () -> ignore (Transformer.graph Transformer.bert_base ~seq_len:0))

(* --- CNN --- *)

let conv_specs g =
  List.filter_map
    (fun op -> match op with Op.Conv { spec; _ } -> Some spec | _ -> None)
    g.Op.ops

let test_alexnet_at_224 () =
  let g = Cnn.alexnet.build ~batch:1 ~resolution:224 in
  let convs = conv_specs g in
  Alcotest.(check int) "five convolutions" 5 (List.length convs);
  let first = List.hd convs in
  Alcotest.(check int) "conv1 output 55x55" 55
    (Mikpoly_tensor.Conv_spec.out_h first);
  (* Three fully-connected layers with the adaptive-pool input. *)
  let fcs =
    List.filter_map
      (fun op -> match op with Op.Gemm { n; k; _ } -> Some (n, k) | _ -> None)
      g.Op.ops
  in
  Alcotest.(check (list (pair int int))) "fc shapes"
    [ (4096, 9216); (4096, 4096); (1000, 4096) ]
    fcs

let test_vgg11_conv_count () =
  let g = Cnn.vgg11.build ~batch:2 ~resolution:224 in
  Alcotest.(check int) "eight convolutions" 8 (List.length (conv_specs g))

let test_resnet18_structure () =
  let g = Cnn.resnet18.build ~batch:1 ~resolution:224 in
  (* stem + 16 block convs + 3 downsample projections = 20. *)
  Alcotest.(check int) "twenty convolutions" 20 (List.length (conv_specs g));
  let fc =
    List.find_map
      (fun op -> match op with Op.Gemm { n; k; _ } -> Some (n, k) | _ -> None)
      g.Op.ops
  in
  Alcotest.(check (option (pair int int))) "fc 512->1000" (Some (1000, 512)) fc

let test_googlenet_structure () =
  let g = Cnn.googlenet.build ~batch:1 ~resolution:224 in
  (* stem 3 + 9 inceptions x 6 branch convs = 57. *)
  Alcotest.(check int) "57 convolutions" 57 (List.length (conv_specs g))

let test_cnn_batch_scales_m () =
  let g1 = Cnn.vgg11.build ~batch:1 ~resolution:224 in
  let g8 = Cnn.vgg11.build ~batch:8 ~resolution:224 in
  Alcotest.(check (float 1.)) "8x flops"
    (8. *. Op.total_gemm_flops g1)
    (Op.total_gemm_flops g8)

let test_cnn_dynamic_resolution () =
  let g64 = Cnn.resnet18.build ~batch:1 ~resolution:64 in
  let g448 = Cnn.resnet18.build ~batch:1 ~resolution:448 in
  Alcotest.(check bool) "resolution grows work" true
    (Op.total_gemm_flops g448 > 10. *. Op.total_gemm_flops g64)

(* --- Llama --- *)

let test_llama_table8_shapes () =
  (* Table 8: qkv (3840, N, 5120); o_proj (5120, N, 1280); ffn up
     (3456, N, 5120); ffn down (5120, N, 3456). *)
  let shapes =
    List.map (fun g -> Llama.gemm_shape g ~tokens:100) Llama.layer_gemms
  in
  Alcotest.(check (list (triple int int int))) "per-GPU shapes"
    [ (3840, 100, 5120); (5120, 100, 1280); (3456, 100, 5120); (5120, 100, 3456) ]
    shapes

let test_llama_prefill_graph () =
  let g = Llama.prefill_graph ~batch:2 ~seq_len:64 in
  Alcotest.(check bool) "has allreduce" true
    (List.exists (fun op -> match op with Op.Comm _ -> true | _ -> false) g.Op.ops);
  Alcotest.(check bool) "40 layers of projections" true
    (count_gemms g >= 40 * 5)

let test_llama_generation_monotone () =
  let op_seconds (g : Op.graph) = 1e-6 *. float_of_int (List.length g.Op.ops) in
  let t1 = Llama.generation_seconds ~op_seconds ~batch:1 ~seq_len:64 ~output_len:16 in
  let t2 = Llama.generation_seconds ~op_seconds ~batch:1 ~seq_len:64 ~output_len:512 in
  Alcotest.(check bool) "more output takes longer" true (t2 > t1)

(* --- Inference engine --- *)

let const_backend s ~m:_ ~n:_ ~k:_ = Ok s

let test_inference_accumulates () =
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"a" ~m:10 ~n:10 ~k:10 ();
        Op.gemm ~repeat:3 ~label:"b" ~m:10 ~n:10 ~k:10 ();
        Op.mem ~label:"m" ~bytes:(1555e9 /. 1e3);
      ]
  in
  let r = Inference.run gpu g ~gemm:(const_backend 1e-3) () in
  Alcotest.(check (float 1e-6)) "gemm seconds" 4e-3 r.gemm_seconds;
  Alcotest.(check bool) "mem ~1ms + launch" true
    (r.mem_seconds > 0.9e-3 && r.mem_seconds < 1.2e-3);
  Alcotest.(check bool) "valid" true (Inference.valid r)

let test_inference_overhead_once_per_shape () =
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"a" ~m:10 ~n:10 ~k:10 ();
        Op.gemm ~label:"b" ~m:10 ~n:10 ~k:10 ();
        Op.gemm ~label:"c" ~m:20 ~n:10 ~k:10 ();
      ]
  in
  let r =
    Inference.run gpu g ~gemm:(const_backend 1e-6)
      ~overhead_per_shape:(fun ~m:_ ~n:_ ~k:_ -> 1.)
      ()
  in
  Alcotest.(check (float 1e-9)) "two distinct shapes" 2. r.overhead_seconds

let test_inference_invalid_counting () =
  let g =
    Op.graph ~name:"g"
      [ Op.gemm ~label:"a" ~m:10 ~n:10 ~k:10 (); Op.gemm ~label:"b" ~m:9999 ~n:1 ~k:1 () ]
  in
  let backend ~m ~n:_ ~k:_ = if m > 1000 then Error "out of range" else Ok 1e-6 in
  let r = Inference.run gpu g ~gemm:backend () in
  Alcotest.(check int) "one invalid" 1 r.invalid_ops;
  Alcotest.(check bool) "not valid" false (Inference.valid r)

let test_inference_conv_backend_split () =
  let spec =
    Mikpoly_tensor.Conv_spec.make ~batch:1 ~in_channels:4 ~out_channels:4
      ~in_h:8 ~in_w:8 ~kernel:3 ()
  in
  let g =
    Op.graph ~name:"g"
      [ Op.conv ~label:"c" spec; Op.gemm ~label:"fc" ~m:1 ~n:10 ~k:10 () ]
  in
  let r =
    Inference.run gpu g ~gemm:(const_backend 1e-6)
      ~conv_gemm:(const_backend 5e-6) ()
  in
  Alcotest.(check (float 1e-12)) "conv uses conv backend" 6e-6 r.gemm_seconds

let test_inference_comm () =
  let g = Op.graph ~name:"g" [ Op.comm ~label:"ar" ~bytes:300e9 ~gbps:300. ] in
  let r = Inference.run gpu g ~gemm:(const_backend 0.) () in
  Alcotest.(check bool) "1s transfer" true
    (r.comm_seconds > 0.99 && r.comm_seconds < 1.01)

(* --- Training --- *)

let test_training_dense_shapes () =
  let shapes = Training.gemm_shapes_of_batch ~batch:32 ~in_features:512 ~out_features:2048 in
  Alcotest.(check (list (triple int int int))) "fwd/dx/dw"
    [ (32, 2048, 512); (32, 512, 2048); (512, 2048, 32) ]
    shapes

let test_training_dense_step_ops () =
  let g = Training.dense_layer_step ~batch:16 ~in_features:128 ~out_features:256 in
  let gemms =
    List.length
      (List.filter (fun op -> match op with Op.Gemm _ -> true | _ -> false) g.Op.ops)
  in
  Alcotest.(check int) "three gemms" 3 gemms

let test_training_transformer_volume () =
  (* Forward+backward is ~3x the forward GEMM volume. *)
  let fwd = Transformer.graph Transformer.bert_base ~seq_len:128 in
  let step = Training.transformer_step Transformer.bert_base ~batch:1 ~seq_len:128 in
  let ratio = Op.total_gemm_flops step /. Op.total_gemm_flops fwd in
  Alcotest.(check bool) "~3x forward flops" true (ratio > 2. && ratio < 3.5)

let test_training_invalid () =
  Alcotest.check_raises "bad batch"
    (Invalid_argument "Training.dense_layer_step: non-positive dimension")
    (fun () ->
      ignore (Training.dense_layer_step ~batch:0 ~in_features:1 ~out_features:1))

(* --- Inflight --- *)

let test_inflight_requests_deterministic () =
  let a = Inflight.synth_requests ~seed:1 ~count:10 ~max_prompt:100 ~max_output:50 in
  let b = Inflight.synth_requests ~seed:1 ~count:10 ~max_prompt:100 ~max_output:50 in
  Alcotest.(check bool) "same trace" true (a = b);
  List.iter
    (fun (r : Inflight.request) ->
      Alcotest.(check bool) "lengths in range" true
        (r.prompt_len >= 1 && r.prompt_len <= 100 && r.output_len >= 1
         && r.output_len <= 50))
    a

let test_inflight_simulation_completes () =
  let requests =
    Inflight.synth_requests ~seed:3 ~count:5 ~max_prompt:64 ~max_output:8
  in
  let stats = Inflight.simulate gpu ~gemm:(const_backend 1e-6) requests in
  let expected_tokens =
    List.fold_left (fun acc (r : Inflight.request) -> acc + r.output_len) 0 requests
  in
  Alcotest.(check int) "all tokens generated" expected_tokens stats.tokens_generated;
  Alcotest.(check bool) "steps ran" true (stats.steps > 0);
  Alcotest.(check bool) "shapes varied" true (stats.distinct_batch_sizes > 1);
  Alcotest.(check bool) "time accumulated" true (stats.total_seconds > 0.)

let test_inflight_empty_rejected () =
  Alcotest.check_raises "no requests"
    (Invalid_argument "Inflight.simulate: no requests") (fun () ->
      ignore (Inflight.simulate gpu ~gemm:(const_backend 1e-6) []))

(* --- Fusion --- *)

let test_fusion_removes_epilogues () =
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"mm" ~m:64 ~n:64 ~k:64 ();
        Op.mem ~label:"relu" ~bytes:(2. *. 64. *. 64. *. 2.);
        Op.gemm ~label:"mm2" ~m:64 ~n:64 ~k:64 ();
      ]
  in
  let fused = Fusion.fuse_epilogues g in
  Alcotest.(check int) "one op fused" 1 (Fusion.fused_ops ~original:g ~fused);
  Alcotest.(check int) "two ops left" 2 (List.length fused.ops)

let test_fusion_keeps_large_mem () =
  (* A softmax-sized Mem (quadratic in seq) must not fuse into a small
     producer. *)
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"mm" ~m:8 ~n:8 ~k:8 ();
        Op.mem ~label:"softmax" ~bytes:1e9;
      ]
  in
  let fused = Fusion.fuse_epilogues g in
  Alcotest.(check int) "nothing fused" 0 (Fusion.fused_ops ~original:g ~fused)

let test_fusion_one_epilogue_per_producer () =
  let bytes = 2. *. 64. *. 64. *. 2. in
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~label:"mm" ~m:64 ~n:64 ~k:64 ();
        Op.mem ~label:"relu" ~bytes;
        Op.mem ~label:"norm" ~bytes;
      ]
  in
  let fused = Fusion.fuse_epilogues g in
  Alcotest.(check int) "only the first epilogue fuses" 1
    (Fusion.fused_ops ~original:g ~fused)

let test_fusion_never_fuses_into_comm () =
  let g =
    Op.graph ~name:"g"
      [
        Op.comm ~label:"ar" ~bytes:1024. ~gbps:300.;
        Op.mem ~label:"m" ~bytes:8.;
      ]
  in
  let fused = Fusion.fuse_epilogues g in
  Alcotest.(check int) "comm is not a producer" 0
    (Fusion.fused_ops ~original:g ~fused)

let test_fusion_repeat_producer () =
  (* A batched GEMM writes repeat x m x n values, so its epilogue
     threshold scales with the group size; the saved traffic is
     reported alongside the count. *)
  let out = 4. *. 64. *. 64. *. 2. in
  let g =
    Op.graph ~name:"g"
      [
        Op.gemm ~repeat:4 ~label:"heads" ~m:64 ~n:64 ~k:64 ();
        Op.mem ~label:"softmax" ~bytes:(3. *. out);
      ]
  in
  let r = Fusion.fuse g in
  Alcotest.(check int) "epilogue of a batched GEMM fuses" 1 r.Fusion.fused_ops;
  Alcotest.(check (float 1e-6)) "saved bytes reported" (3. *. out)
    r.Fusion.fused_bytes

let test_fusion_max_ratio_boundary () =
  (* The legality bound is inclusive: exactly max_ratio x output bytes
     fuses, one byte more does not. *)
  let out = 64. *. 64. *. 2. in
  let graph_with bytes =
    Op.graph ~name:"g"
      [ Op.gemm ~label:"mm" ~m:64 ~n:64 ~k:64 (); Op.mem ~label:"e" ~bytes ]
  in
  Alcotest.(check int) "exactly max_ratio fuses" 1
    (Fusion.fuse (graph_with (4. *. out))).Fusion.fused_ops;
  Alcotest.(check int) "just over stays" 0
    (Fusion.fuse (graph_with ((4. *. out) +. 1.))).Fusion.fused_ops

let test_fusion_zero_rewrite_keeps_name () =
  let plain = Op.graph ~name:"plain" [ Op.gemm ~label:"mm" ~m:8 ~n:8 ~k:8 () ] in
  let r = Fusion.fuse plain in
  Alcotest.(check string) "zero-fusion graph keeps its name" "plain"
    r.Fusion.graph.Op.name;
  Alcotest.(check (float 0.)) "no bytes saved" 0. r.Fusion.fused_bytes;
  let fusable =
    Op.graph ~name:"net"
      [
        Op.gemm ~label:"mm" ~m:64 ~n:64 ~k:64 ();
        Op.mem ~label:"relu" ~bytes:(64. *. 64. *. 2.);
      ]
  in
  Alcotest.(check string) "fused graph is renamed" "net+fused"
    (Fusion.fuse fusable).Fusion.graph.Op.name

let test_fusion_speeds_up_bert () =
  let hw = gpu in
  let g = Transformer.graph Transformer.bert_base ~seq_len:64 in
  let fused = Fusion.fuse_epilogues g in
  Alcotest.(check bool) "fuses many epilogues" true
    (Fusion.fused_ops ~original:g ~fused > 10);
  let time graph = (Inference.run hw graph ~gemm:(const_backend 1e-6) ()).seconds in
  Alcotest.(check bool) "strictly faster" true (time fused < time g)

let () =
  Alcotest.run "nn"
    [
      ( "op",
        [
          Alcotest.test_case "constructors" `Quick test_op_constructors;
          Alcotest.test_case "total flops" `Quick test_op_total_flops;
          Alcotest.test_case "shape dedup" `Quick test_op_gemm_shapes_dedup;
        ] );
      ( "transformer",
        [
          Alcotest.test_case "bert structure" `Quick test_bert_structure;
          Alcotest.test_case "bert shapes" `Quick test_bert_shapes;
          Alcotest.test_case "distilbert smaller" `Quick test_distilbert_smaller;
          Alcotest.test_case "albert dimensions" `Quick test_albert_dimensions;
          Alcotest.test_case "invalid seq" `Quick test_transformer_invalid_seq;
        ] );
      ( "cnn",
        [
          Alcotest.test_case "alexnet at 224" `Quick test_alexnet_at_224;
          Alcotest.test_case "vgg11 convs" `Quick test_vgg11_conv_count;
          Alcotest.test_case "resnet18 structure" `Quick test_resnet18_structure;
          Alcotest.test_case "googlenet structure" `Quick test_googlenet_structure;
          Alcotest.test_case "batch scales M" `Quick test_cnn_batch_scales_m;
          Alcotest.test_case "dynamic resolution" `Quick test_cnn_dynamic_resolution;
        ] );
      ( "llama",
        [
          Alcotest.test_case "Table 8 shapes" `Quick test_llama_table8_shapes;
          Alcotest.test_case "prefill graph" `Quick test_llama_prefill_graph;
          Alcotest.test_case "generation monotone" `Quick test_llama_generation_monotone;
        ] );
      ( "inference",
        [
          Alcotest.test_case "accumulates" `Quick test_inference_accumulates;
          Alcotest.test_case "overhead once per shape" `Quick
            test_inference_overhead_once_per_shape;
          Alcotest.test_case "invalid counting" `Quick test_inference_invalid_counting;
          Alcotest.test_case "conv backend split" `Quick
            test_inference_conv_backend_split;
          Alcotest.test_case "comm" `Quick test_inference_comm;
        ] );
      ( "training",
        [
          Alcotest.test_case "dense step shapes" `Quick test_training_dense_shapes;
          Alcotest.test_case "dense step ops" `Quick test_training_dense_step_ops;
          Alcotest.test_case "transformer volume" `Quick
            test_training_transformer_volume;
          Alcotest.test_case "invalid" `Quick test_training_invalid;
        ] );
      ( "inflight",
        [
          Alcotest.test_case "deterministic trace" `Quick
            test_inflight_requests_deterministic;
          Alcotest.test_case "simulation completes" `Quick
            test_inflight_simulation_completes;
          Alcotest.test_case "empty rejected" `Quick test_inflight_empty_rejected;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "removes epilogues" `Quick test_fusion_removes_epilogues;
          Alcotest.test_case "keeps large mem ops" `Quick test_fusion_keeps_large_mem;
          Alcotest.test_case "one epilogue per producer" `Quick
            test_fusion_one_epilogue_per_producer;
          Alcotest.test_case "batched producer" `Quick
            test_fusion_repeat_producer;
          Alcotest.test_case "max_ratio boundary" `Quick
            test_fusion_max_ratio_boundary;
          Alcotest.test_case "zero-fusion name stable" `Quick
            test_fusion_zero_rewrite_keeps_name;
          Alcotest.test_case "comm not a producer" `Quick
            test_fusion_never_fuses_into_comm;
          Alcotest.test_case "speeds up bert" `Quick test_fusion_speeds_up_bert;
        ] );
    ]
