(* Unit tests for the multi-tenant fleet: tenant traces, weighted fair
   queueing, the decayed shape-bucket learner, autoscaler hysteresis and
   fault-plane rules, and the fleet event loop's determinism and
   request-conservation invariants. *)

open Mikpoly_fleet
module Request = Mikpoly_serve.Request
module Batcher = Mikpoly_serve.Batcher
module Bucketing = Mikpoly_serve.Bucketing
module Scheduler = Mikpoly_serve.Scheduler
module Plan = Mikpoly_fault.Plan

let gold = { Tenant.tenant_id = 0; tenant_name = "gold"; tier = Tenant.Gold }
let silver = { Tenant.tenant_id = 1; tenant_name = "silver"; tier = Tenant.Silver }

let be =
  { Tenant.tenant_id = 2; tenant_name = "batch"; tier = Tenant.Best_effort }

let req ?(ttft = 0.25) ?(e2e = 2.0) ~id ~arrival ?(prompt = 8) ?(output = 2) () =
  {
    Request.id;
    arrival;
    prompt_len = prompt;
    output_len = output;
    slo = { Request.ttft; e2e };
  }

let tag tenant r = { Tenant.req = r; tenant }

let specs ?(count = 8) () =
  [
    { Tenant.tenant = gold; rate = 40.; count };
    { Tenant.tenant = silver; rate = 40.; count };
    { Tenant.tenant = be; rate = 40.; count };
  ]

let trace ?count () =
  Tenant.trace ~seed:7 ~max_prompt:64 ~max_output:4 (specs ?count ()) ()

let fleet_config =
  {
    Fleet.replicas = 2;
    batcher = Batcher.Greedy { max_batch = 4 };
    bucketing = Bucketing.Pow2;
    cache_capacity = 32;
    coalesce = false;
    steal_age = 0.05;
    warm = None;
    autoscale = None;
    ratelimit = None;
  }

(* --- Tenant --- *)

let test_trace_deterministic () =
  let t1 = trace () and t2 = trace () in
  Alcotest.(check bool) "identical traces" true (t1 = t2);
  let ids = List.map (fun (tg : Tenant.tagged) -> tg.req.Request.id) t1 in
  Alcotest.(check int)
    "unique fleet-wide ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let arrivals =
    List.map (fun (tg : Tenant.tagged) -> tg.req.Request.arrival) t1
  in
  Alcotest.(check bool)
    "arrival-ordered" true
    (arrivals = List.sort compare arrivals)

let test_trace_stream_independence () =
  (* Resizing one tenant must not perturb another tenant's arrivals. *)
  let big = trace ~count:8 () and small = trace ~count:2 () in
  let arrivals_of t tr =
    List.filter_map
      (fun (tg : Tenant.tagged) ->
        if tg.tenant.Tenant.tenant_id = t then Some tg.req.Request.arrival
        else None)
      tr
  in
  let prefix n l = List.filteri (fun i _ -> i < n) l in
  Alcotest.(check (list (float 1e-12)))
    "gold arrivals unchanged"
    (prefix 2 (arrivals_of 0 big))
    (arrivals_of 0 small)

let test_trace_rejects_duplicate_ids () =
  Alcotest.check_raises "duplicate tenant id"
    (Invalid_argument "Tenant.trace: duplicate tenant ids") (fun () ->
      ignore
        (Tenant.trace ~seed:1 ~max_prompt:8 ~max_output:2
           [
             { Tenant.tenant = gold; rate = 1.; count = 1 };
             { Tenant.tenant = { gold with tenant_name = "dup" }; rate = 1.; count = 1 };
           ]
           ()))

let test_lookup () =
  let tr = trace () in
  let first = List.hd tr in
  Alcotest.(check string)
    "lookup finds"
    first.Tenant.tenant.Tenant.tenant_name
    (Tenant.lookup tr first.Tenant.req.Request.id).Tenant.tenant_name;
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Tenant.lookup: unknown request id") (fun () ->
      ignore (Tenant.lookup tr 99999))

(* --- Wfq --- *)

let take_ids q ~max =
  Wfq.take q ~max ~eligible:(fun _ -> true) ()
  |> List.map (fun (tg : Tenant.tagged) -> tg.req.Request.id)

let test_wfq_weighted_order () =
  let q = Wfq.create () in
  (* Equal-cost backlogs: weight-4 gold finishes four grants per
     virtual-time unit the weight-1 batch tenant finishes one, and the
     tie at equal tags goes to the lower tenant id. *)
  for i = 0 to 4 do
    Wfq.push q (tag gold (req ~id:i ~arrival:0. ()))
  done;
  for i = 10 to 14 do
    Wfq.push q (tag be (req ~id:i ~arrival:0. ()))
  done;
  Alcotest.(check (list int))
    "gold drains 4:1" [ 0; 1; 2; 3; 10; 4 ] (take_ids q ~max:6);
  let s = Wfq.stats q in
  Alcotest.(check (list int))
    "grants per lane" [ 5; 1 ]
    (List.map (fun l -> l.Wfq.s_grants) s);
  Alcotest.(check (list int))
    "queued per lane" [ 0; 4 ]
    (List.map (fun l -> l.Wfq.s_queued) s)

let test_wfq_starvation_bound () =
  let q = Wfq.create () in
  for i = 0 to 19 do
    Wfq.push q (tag gold (req ~id:i ~arrival:0. ()))
  done;
  Wfq.push q (tag be (req ~id:100 ~arrival:0. ()));
  let granted = take_ids q ~max:6 in
  Alcotest.(check bool)
    "weight-1 tenant served within one weight-4 round" true
    (List.mem 100 granted)

let test_wfq_push_front () =
  let q = Wfq.create () in
  Wfq.push q (tag gold (req ~id:0 ~arrival:0. ()));
  Wfq.push q (tag gold (req ~id:1 ~arrival:0. ()));
  Alcotest.(check (list int)) "fifo head" [ 0 ] (take_ids q ~max:1);
  Wfq.push_front q (tag gold (req ~id:0 ~arrival:0. ()));
  Alcotest.(check (list int))
    "requeued request goes first" [ 0; 1 ] (take_ids q ~max:2);
  Alcotest.(check bool) "drained" true (Wfq.is_empty q)

let test_wfq_eligible_filter () =
  let q = Wfq.create () in
  Wfq.push q (tag gold (req ~id:0 ~arrival:5. ()));
  let late =
    Wfq.take q ~max:1
      ~eligible:(fun tg -> tg.Tenant.req.Request.arrival <= 1.)
      ()
  in
  Alcotest.(check int) "nothing eligible" 0 (List.length late);
  Alcotest.(check int) "still queued" 1 (Wfq.length q)

let test_wfq_group_coalescing () =
  let q = Wfq.create () in
  Wfq.push q (tag gold (req ~id:0 ~arrival:0. ~prompt:8 ()));
  Wfq.push q (tag silver (req ~id:1 ~arrival:0. ~prompt:16 ()));
  Wfq.push q (tag be (req ~id:2 ~arrival:0. ~prompt:8 ()));
  let same_prompt (l : Tenant.tagged) (r : Tenant.tagged) =
    l.req.Request.prompt_len = r.req.Request.prompt_len
  in
  let ids =
    Wfq.take q ~max:3
      ~eligible:(fun _ -> true)
      ~group:same_prompt ()
    |> List.map (fun (tg : Tenant.tagged) -> tg.req.Request.id)
  in
  (* The best-effort shape-mate jumps ahead of silver's smaller WFQ tag
     into the leader's group; the mismatched silver request still rides
     along once the group is exhausted (work conservation). *)
  Alcotest.(check (list int)) "group-first order" [ 0; 2; 1 ] ids

let test_wfq_first_filter_gates_offer () =
  let q = Wfq.create () in
  Wfq.push q (tag gold (req ~id:0 ~arrival:0. ~prompt:8 ()));
  let none =
    Wfq.take q ~max:2
      ~eligible:(fun _ -> true)
      ~first:(fun tg -> tg.Tenant.req.Request.prompt_len = 16)
      ()
  in
  Alcotest.(check int) "offer declined entirely" 0 (List.length none);
  Alcotest.(check int) "nothing consumed" 1 (Wfq.length q)

(* --- Learner --- *)

let test_learner_decay_and_ranking () =
  let l = Learner.create ~half_life:1.0 () in
  Learner.observe l ~now:0. ~tenant:0 ~signature:64 ~weight:4.;
  Learner.observe l ~now:0. ~tenant:1 ~signature:128 ~weight:1.;
  (match Learner.top_k l ~now:0. ~k:2 with
  | [ (64, m1); (128, m2) ] ->
    Alcotest.(check (float 1e-9)) "gold mass" 4. m1;
    Alcotest.(check (float 1e-9)) "be mass" 1. m2
  | other ->
    Alcotest.failf "unexpected ranking (%d entries)" (List.length other));
  (* One half-life halves the old mass; fresh mass overtakes it. *)
  Learner.observe l ~now:1. ~tenant:1 ~signature:128 ~weight:3.;
  (match Learner.top_k l ~now:1. ~k:2 with
  | [ (128, m1); (64, m2) ] ->
    Alcotest.(check (float 1e-9)) "decayed+fresh" 3.5 m1;
    Alcotest.(check (float 1e-9)) "halved" 2. m2
  | other ->
    Alcotest.failf "unexpected ranking (%d entries)" (List.length other))

let test_learner_ties_to_smaller_signature () =
  let l = Learner.create () in
  Learner.observe l ~now:0. ~tenant:0 ~signature:512 ~weight:1.;
  Learner.observe l ~now:0. ~tenant:0 ~signature:32 ~weight:1.;
  Alcotest.(check (list int))
    "tie breaks small-first" [ 32; 512 ]
    (List.map fst (Learner.top_k l ~now:0. ~k:4));
  Alcotest.(check (list int))
    "signatures ascending" [ 32; 512 ] (Learner.signatures l)

(* The warm store's mass-aware admission: the cache the fleet precompiles
   into is weighted by decayed learner mass, so a heavy-tail tenant's hot
   bucket must survive a scan of cold, never-repeated buckets — the exact
   failure mode of plain LRU, where any scan longer than the capacity
   flushes everything. *)
let test_warm_admission_survives_cold_scan () =
  let module Shape_cache = Mikpoly_serve.Shape_cache in
  let l = Learner.create ~half_life:1.0 () in
  (* One hot bucket and three mildly warm ones; the scan's buckets are
     never observed, so their mass is 0. *)
  Learner.observe l ~now:0. ~tenant:0 ~signature:1 ~weight:100.;
  List.iter
    (fun s -> Learner.observe l ~now:0. ~tenant:1 ~signature:s ~weight:1.)
    [ 2; 3; 4 ];
  let cache =
    Shape_cache.create_weighted
      ~weight:(fun (s, _, _) -> Learner.mass l ~now:0. ~signature:s)
      ~capacity:4
  in
  List.iter (fun s -> Shape_cache.add cache (s, 0, 0) ()) [ 1; 2; 3; 4 ];
  (* A cold-bucket scan 5x the capacity: every insert is refused (mass 0
     is strictly below every resident's), so the working set survives
     untouched. Under plain LRU this scan would evict all four. *)
  for s = 100 to 119 do
    Shape_cache.add cache (s, 0, 0) ()
  done;
  Alcotest.(check int) "every cold insert refused" 20
    (Shape_cache.rejections cache);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d survived the scan" s)
        true
        (Shape_cache.mem cache (s, 0, 0)))
    [ 1; 2; 3; 4 ];
  (* A newly hot bucket still gets in — admission is mass-aware, not
     frozen: it evicts the lowest-mass resident, never the hot bucket. *)
  Learner.observe l ~now:0. ~tenant:2 ~signature:5 ~weight:50.;
  Shape_cache.add cache (5, 0, 0) ();
  Alcotest.(check bool) "new hot bucket admitted" true
    (Shape_cache.mem cache (5, 0, 0));
  Alcotest.(check bool) "hottest bucket still resident" true
    (Shape_cache.mem cache (1, 0, 0));
  Alcotest.(check int) "capacity respected" 4 (Shape_cache.size cache)

let test_learner_mass_decays_to_harmless () =
  let l = Learner.create ~half_life:1.0 () in
  Learner.observe l ~now:0. ~tenant:0 ~signature:8 ~weight:16.;
  Alcotest.(check (float 1e-9)) "fresh mass" 16. (Learner.mass l ~now:0. ~signature:8);
  Alcotest.(check (float 1e-9)) "one half-life" 8. (Learner.mass l ~now:1. ~signature:8);
  Alcotest.(check (float 1e-9)) "four half-lives" 1. (Learner.mass l ~now:4. ~signature:8);
  Alcotest.(check (float 1e-9)) "never observed" 0. (Learner.mass l ~now:0. ~signature:9)

(* --- Autoscaler --- *)

let asc =
  {
    Autoscaler.min_replicas = 1;
    max_replicas = 4;
    up_queue_depth = 4.;
    down_queue_depth = 1.;
    slo_floor = 0.9;
    stall_ceiling = 0.5;
    cooldown = 1.0;
    interval = 0.25;
  }

let sig_ ?(queue = 0.) ?(slo = 1.) ?(stall = 0.) ?(live = 2) ?(down = 0) () =
  {
    Autoscaler.queue_depth = queue;
    slo_attainment = slo;
    stall_ratio = stall;
    live_replicas = live;
    down_replicas = down;
  }

let decision = Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (Autoscaler.decision_name d))
    ( = )

let decide = Autoscaler.decide asc ~last_change:0.

let test_autoscaler_hysteresis () =
  Alcotest.check decision "above up threshold" Autoscaler.Scale_up
    (decide ~now:2. (sig_ ~queue:5. ()));
  Alcotest.check decision "inside the band" Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:2. ()));
  Alcotest.check decision "below down threshold" Autoscaler.Scale_down
    (decide ~now:2. (sig_ ~queue:0.5 ()));
  Alcotest.check decision "slo breach scales up" Autoscaler.Scale_up
    (decide ~now:2. (sig_ ~queue:0. ~slo:0.5 ()));
  Alcotest.check decision "cooldown holds" Autoscaler.Hold
    (decide ~now:0.5 (sig_ ~queue:5. ()))

let test_autoscaler_bounds_and_stalls () =
  Alcotest.check decision "at max replicas" Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:9. ~live:4 ()));
  Alcotest.check decision "down replica counts against capacity"
    Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:9. ~live:3 ~down:1 ()));
  Alcotest.check decision "at min replicas" Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:0. ~live:1 ()));
  Alcotest.check decision "compile-bound fleet holds" Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:9. ~stall:0.8 ()))

let test_autoscaler_fault_rules () =
  Alcotest.check decision "crash is not a scale-down signal"
    Autoscaler.Hold
    (decide ~now:2. (sig_ ~queue:0. ~live:3 ~down:1 ()));
  Alcotest.check decision "below floor bypasses cooldown"
    Autoscaler.Scale_up
    (decide ~now:0.01 (sig_ ~live:0 ~down:0 ()))

let test_autoscaler_validate () =
  Alcotest.check_raises "no hysteresis gap"
    (Invalid_argument
       "Autoscaler: need 0 <= down_queue_depth < up_queue_depth (hysteresis)")
    (fun () -> Autoscaler.validate { asc with down_queue_depth = 4. });
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Autoscaler: max_replicas must be >= min_replicas")
    (fun () -> Autoscaler.validate { asc with max_replicas = 0 })

(* --- Fleet --- *)

let engine = Scheduler.synthetic_engine ~compile:1e-3 ~shape_families:2 ()

let full_config =
  {
    fleet_config with
    coalesce = true;
    warm = Some { Fleet.default_warm with warm_interval = 0.01 };
    autoscale = Some { asc with cooldown = 0.05; interval = 0.05 };
  }

let test_fleet_deterministic () =
  let tr = trace () in
  let o1 = Fleet.run full_config engine tr in
  let o2 = Fleet.run full_config engine tr in
  Alcotest.(check bool) "bit-identical outcomes" true (o1 = o2)

let test_fleet_conserves_requests () =
  let tr = trace () in
  let check_arm name config =
    let o = Fleet.run config engine tr in
    Alcotest.(check int)
      (name ^ ": completed+dropped covers the trace")
      (List.length tr)
      (List.length o.Fleet.completed + List.length o.Fleet.dropped)
  in
  check_arm "plain" fleet_config;
  check_arm "coalesced" { fleet_config with coalesce = true };
  check_arm "full" full_config

let test_fleet_validate () =
  Alcotest.check_raises "no replicas"
    (Invalid_argument "Fleet: replicas must be >= 1") (fun () ->
      ignore (Fleet.run { fleet_config with replicas = 0 } engine []));
  Alcotest.check_raises "bad warm interval"
    (Invalid_argument "Fleet: warm_interval must be > 0") (fun () ->
      Fleet.validate
        {
          fleet_config with
          warm = Some { Fleet.default_warm with warm_interval = 0. };
        })

let test_fleet_coalescing_cuts_stalls () =
  (* A synchronized burst of same-shape prompts from all three tenants:
     the coalescer must pull them into shared-signature admissions. *)
  let tr =
    List.concat_map
      (fun (tenant, base) ->
        List.init 4 (fun i ->
            tag tenant (req ~id:(base + i) ~arrival:0. ~prompt:8 ())))
      [ (gold, 0); (silver, 10); (be, 20) ]
  in
  let plain = Fleet.run fleet_config engine tr in
  let grouped = Fleet.run { fleet_config with coalesce = true } engine tr in
  Alcotest.(check bool)
    "groups formed" true
    (grouped.Fleet.coalesced_groups > 0);
  Alcotest.(check bool)
    "no more stalls than uncoalesced" true
    (grouped.Fleet.compile_stall_seconds
    <= plain.Fleet.compile_stall_seconds +. 1e-12)

let test_fleet_warm_store_offloads_compiles () =
  let tr = trace ~count:24 () in
  let warm = Fleet.run full_config engine tr in
  (match warm.Fleet.warm_stats with
  | None -> Alcotest.fail "warm store enabled but no stats"
  | Some _ -> ());
  Alcotest.(check bool)
    "fleet-shared cache engaged" true
    (warm.Fleet.warm_hits > 0);
  let cold = Fleet.run { full_config with warm = None } engine tr in
  Alcotest.(check bool)
    "warm fleet stalls no more than cold" true
    (warm.Fleet.compile_stall_seconds
    <= cold.Fleet.compile_stall_seconds +. 1e-12)

let test_fleet_crash_requeues_and_conserves () =
  let tr = trace ~count:16 () in
  let plan = Plan.make ~crashes:[ (0.02, 0) ] ~restart_delay:0.05 ~seed:3 () in
  let o = Fleet.run ~faults:plan fleet_config engine tr in
  Alcotest.(check int) "crash injected" 1 o.Fleet.crashes;
  Alcotest.(check int)
    "no request lost to the crash"
    (List.length tr)
    (List.length o.Fleet.completed + List.length o.Fleet.dropped);
  let calm = Fleet.run fleet_config engine tr in
  Alcotest.(check bool)
    "crash cannot speed the fleet up" true
    (o.Fleet.makespan >= calm.Fleet.makespan -. 1e-12)

let test_fleet_autoscaler_stays_in_bounds () =
  let tr = trace ~count:24 () in
  let o = Fleet.run full_config engine tr in
  (match full_config.autoscale with
  | None -> Alcotest.fail "autoscale arm missing"
  | Some a ->
    Alcotest.(check bool)
      "peak within max" true
      (o.Fleet.peak_replicas <= a.Autoscaler.max_replicas));
  Alcotest.(check bool)
    "replica-seconds accounted" true
    (o.Fleet.replica_seconds > 0.)

let test_fleet_scheduler_projection () =
  let tr = trace () in
  let o = Fleet.run fleet_config engine tr in
  let s = Fleet.to_scheduler_outcome o in
  Alcotest.(check int)
    "completions carried over"
    (List.length o.Fleet.completed)
    (List.length s.Scheduler.completed);
  Alcotest.(check int) "no rejections modeled" 0
    (List.length s.Scheduler.rejected);
  Alcotest.(check (float 1e-12))
    "stall carried over" o.Fleet.compile_stall_seconds
    s.Scheduler.compile_stall_seconds;
  let tier_reqs =
    List.fold_left (fun acc t -> acc + t.Fleet.tm_requests) 0 o.Fleet.tiers
  in
  Alcotest.(check int) "tier rows partition the trace" (List.length tr)
    tier_reqs

let () =
  Alcotest.run "fleet"
    [
      ( "tenant",
        [
          Alcotest.test_case "trace determinism" `Quick
            test_trace_deterministic;
          Alcotest.test_case "stream independence" `Quick
            test_trace_stream_independence;
          Alcotest.test_case "duplicate ids" `Quick
            test_trace_rejects_duplicate_ids;
          Alcotest.test_case "lookup" `Quick test_lookup;
        ] );
      ( "wfq",
        [
          Alcotest.test_case "weighted order" `Quick test_wfq_weighted_order;
          Alcotest.test_case "starvation bound" `Quick
            test_wfq_starvation_bound;
          Alcotest.test_case "push_front" `Quick test_wfq_push_front;
          Alcotest.test_case "eligible filter" `Quick
            test_wfq_eligible_filter;
          Alcotest.test_case "group coalescing" `Quick
            test_wfq_group_coalescing;
          Alcotest.test_case "first filter" `Quick
            test_wfq_first_filter_gates_offer;
        ] );
      ( "learner",
        [
          Alcotest.test_case "decay and ranking" `Quick
            test_learner_decay_and_ranking;
          Alcotest.test_case "deterministic ties" `Quick
            test_learner_ties_to_smaller_signature;
          Alcotest.test_case "mass decays to harmless" `Quick
            test_learner_mass_decays_to_harmless;
          Alcotest.test_case "warm admission survives cold scan" `Quick
            test_warm_admission_survives_cold_scan;
        ] );
      ( "autoscaler",
        [
          Alcotest.test_case "hysteresis" `Quick test_autoscaler_hysteresis;
          Alcotest.test_case "bounds and stalls" `Quick
            test_autoscaler_bounds_and_stalls;
          Alcotest.test_case "fault rules" `Quick test_autoscaler_fault_rules;
          Alcotest.test_case "validate" `Quick test_autoscaler_validate;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "determinism" `Quick test_fleet_deterministic;
          Alcotest.test_case "request conservation" `Quick
            test_fleet_conserves_requests;
          Alcotest.test_case "validate" `Quick test_fleet_validate;
          Alcotest.test_case "coalescing stalls" `Quick
            test_fleet_coalescing_cuts_stalls;
          Alcotest.test_case "warm store" `Quick
            test_fleet_warm_store_offloads_compiles;
          Alcotest.test_case "crash conservation" `Quick
            test_fleet_crash_requeues_and_conserves;
          Alcotest.test_case "autoscaler bounds" `Quick
            test_fleet_autoscaler_stays_in_bounds;
          Alcotest.test_case "scheduler projection" `Quick
            test_fleet_scheduler_projection;
        ] );
    ]
