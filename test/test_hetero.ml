(* Unit tests for the heterogeneous mixed-fleet plane: fault-plan
   device-class windows, door-side rate limiting, breaker probe purity,
   the brown-out ladder's hysteresis, deadline-aware routing, and the
   hetero event loop's conservation / determinism invariants — in
   particular the circuit-breaker × crash-requeue interplay: however
   many copies trips, drains, crashes and hedges put in flight, every
   admitted request ends with exactly one terminal status. *)

open Mikpoly_hetero
module Tenant = Mikpoly_fleet.Tenant
module Ratelimit = Mikpoly_fleet.Ratelimit
module Request = Mikpoly_serve.Request
module Batcher = Mikpoly_serve.Batcher
module Bucketing = Mikpoly_serve.Bucketing
module Scheduler = Mikpoly_serve.Scheduler
module Plan = Mikpoly_fault.Plan
module Breaker = Mikpoly_fault.Breaker
module Hardware = Mikpoly_accel.Hardware

let gold = { Tenant.tenant_id = 0; tenant_name = "gold"; tier = Tenant.Gold }

let silver =
  { Tenant.tenant_id = 1; tenant_name = "silver"; tier = Tenant.Silver }

let be =
  { Tenant.tenant_id = 2; tenant_name = "batch"; tier = Tenant.Best_effort }

let req ?(ttft = 0.25) ?(e2e = 2.0) ~id ~arrival ?(prompt = 8) ?(output = 2) ()
    =
  {
    Request.id;
    arrival;
    prompt_len = prompt;
    output_len = output;
    slo = { Request.ttft; e2e };
  }

let tag tenant r = { Tenant.req = r; tenant }

(* Synthetic engines: fixed step time, one shape per bucket, near-free
   compiles — the event loop's control flow without compiler cost.
   Under the deadline-aware router both classes fit the default 250 ms
   TTFT budget, so the SLOWEST-service class (the "slow" backend,
   class 1) soaks the traffic — fault windows below target class 1. *)
let engine ?(step = 0.001) name =
  {
    Scheduler.engine_name = name;
    step_seconds = (fun ~tokens:_ ~kv_tokens:_ -> step);
    step_shapes = (fun ~tokens -> [ ((tokens, 64, 64), 1) ]);
    compile_seconds = (fun _ -> 1e-6);
    precompile_batch = (fun ~jobs:_ shapes -> List.length shapes);
  }

let fast_backend ?(replicas = 1) () =
  Backend.make ~hw:Hardware.a100 ~replicas (engine ~step:0.001 "fast")

let slow_backend ?(replicas = 1) () =
  Backend.make ~hw:Hardware.ascend910 ~replicas (engine ~step:0.002 "slow")

let config ?hedge ?(failover = true) ?ratelimit backends =
  {
    Hetero.backends;
    batcher = Batcher.Greedy { max_batch = 4 };
    bucketing = Bucketing.Pow2;
    cache_capacity = 32;
    coalesce = false;
    health =
      {
        Health.default with
        breaker = { Breaker.failure_threshold = 2; cooldown = 0.01 };
        min_dwell = 0.002;
      };
    degraded_max_tokens = 16;
    hedge;
    failover;
    ratelimit;
  }

let trace ?(count = 6) () =
  Tenant.trace ~seed:11 ~max_prompt:32 ~max_output:4
    [
      { Tenant.tenant = gold; rate = 200.; count };
      { Tenant.tenant = silver; rate = 200.; count };
      { Tenant.tenant = be; rate = 200.; count };
    ]
    ()

(* --- Fault plan device-class windows --- *)

let test_plan_class_windows () =
  let plan =
    Plan.make
      ~outages:[ Plan.outage ~cls:0 ~start:0.01 ~stop:0.02 ]
      ~brownouts:[ Plan.brownout ~cls:1 ~start:0.01 ~stop:0.03 ~slowdown:3. ]
      ~seed:7 ()
  in
  Alcotest.(check bool)
    "down inside window" true
    (Plan.class_down plan ~cls:0 ~now:0.015);
  Alcotest.(check bool)
    "up before window" false
    (Plan.class_down plan ~cls:0 ~now:0.005);
  Alcotest.(check bool)
    "stop is exclusive" false
    (Plan.class_down plan ~cls:0 ~now:0.02);
  Alcotest.(check bool)
    "other class unaffected" false
    (Plan.class_down plan ~cls:1 ~now:0.015);
  Alcotest.(check (float 1e-9))
    "brown-out multiplier" 3.
    (Plan.class_slowdown plan ~cls:1 ~now:0.02);
  Alcotest.(check (float 1e-9))
    "nominal outside" 1.
    (Plan.class_slowdown plan ~cls:1 ~now:0.05)

(* --- Rate limiting at the door --- *)

let test_ratelimit_sheds_after_burst () =
  let base = { Ratelimit.rl_rate = 10.; rl_burst = 2. } in
  let l =
    Ratelimit.create
      ~rate_for:(fun t -> Ratelimit.for_tier ~base t.Tenant.tier)
      ()
  in
  let tg i = tag be (req ~id:i ~arrival:0. ()) in
  (* burst of 2 admitted, the third refused, a refill admits again *)
  Alcotest.(check bool) "first" true (Ratelimit.admit l ~now:0. (tg 0));
  Alcotest.(check bool) "second" true (Ratelimit.admit l ~now:0. (tg 1));
  Alcotest.(check bool) "third shed" false (Ratelimit.admit l ~now:0. (tg 2));
  Alcotest.(check bool)
    "refill admits" true
    (Ratelimit.admit l ~now:0.2 (tg 3));
  (* gold's bucket is 4x the base burst *)
  let gg i = tag gold (req ~id:(100 + i) ~arrival:0. ()) in
  let admitted =
    List.init 8 (fun i -> Ratelimit.admit l ~now:0. (gg i))
    |> List.filter (fun b -> b)
    |> List.length
  in
  Alcotest.(check int) "gold burst is 4x base" 8 admitted;
  let stats = Ratelimit.stats l in
  Alcotest.(check int) "sheds counted" 1 stats.Ratelimit.rl_shed;
  Alcotest.(check int) "tenants tracked" 2 stats.Ratelimit.rl_tenants

(* --- Breaker: half-open probe peek is pure --- *)

let test_breaker_would_allow_pure () =
  let b =
    Breaker.create ~policy:{ Breaker.failure_threshold = 2; cooldown = 0.01 } ()
  in
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:0.001;
  Alcotest.(check string)
    "tripped" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool)
    "not ready inside cooldown" false
    (Breaker.would_allow b ~now:0.005);
  (* peeking twice must not consume the probe slot *)
  Alcotest.(check bool) "ready" true (Breaker.would_allow b ~now:0.02);
  Alcotest.(check bool) "peek is pure" true (Breaker.would_allow b ~now:0.02);
  Alcotest.(check string)
    "still open after peeks" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "commit" true (Breaker.allow b ~now:0.02);
  Alcotest.(check string)
    "half-open after commit" "half-open"
    (Breaker.state_name (Breaker.state b));
  Breaker.record_success b;
  Alcotest.(check string)
    "probe success re-closes" "closed"
    (Breaker.state_name (Breaker.state b))

(* --- Health ladder hysteresis --- *)

let test_health_ladder_hysteresis () =
  let h =
    Health.create
      {
        Health.breaker = Breaker.default;
        ewma_alpha = 0.5;
        degrade_enter = 2.0;
        degrade_exit = 1.2;
        min_dwell = 0.01;
      }
  in
  Alcotest.(check string)
    "starts healthy" "healthy"
    (Health.level_name (Health.level h));
  (* sustained slowdown crosses the enter threshold *)
  ignore (Health.observe h ~now:0.001 ~slowdown:4. ~failed:false);
  ignore (Health.observe h ~now:0.002 ~slowdown:4. ~failed:false);
  Alcotest.(check string)
    "degrades" "degraded"
    (Health.level_name (Health.level h));
  (* EWMA back under the exit threshold before the dwell: pinned *)
  ignore (Health.observe h ~now:0.004 ~slowdown:0.1 ~failed:false);
  ignore (Health.observe h ~now:0.005 ~slowdown:0.1 ~failed:false);
  Alcotest.(check string)
    "dwell pins the level" "degraded"
    (Health.level_name (Health.level h));
  (* after the dwell it recovers *)
  ignore (Health.observe h ~now:0.02 ~slowdown:0.1 ~failed:false);
  Alcotest.(check string)
    "recovers after dwell" "healthy"
    (Health.level_name (Health.level h));
  Alcotest.(check int) "one degraded entry" 1 (Health.degraded_entries h);
  Alcotest.(check int) "two transitions" 2 (Health.transitions h)

(* --- Router --- *)

let view ?(cls = 0) ?(level = Health.Healthy) ?(probe_ready = false)
    ?(replicas = 1) ?(queue = 0) ?(inflight = 0) ?(service = 0.001)
    ?(cold = 0.) ?(backlog = 0.) () =
  {
    Router.cv_class = cls;
    cv_level = level;
    cv_probe_ready = probe_ready;
    cv_replicas = replicas;
    cv_queue = queue;
    cv_inflight = inflight;
    cv_service = service;
    cv_cold_compile = cold;
    cv_backlog = backlog;
  }

let test_router_cheapest_without_budget () =
  let a = view ~cls:0 ~service:0.002 () in
  let b = view ~cls:1 ~service:0.001 () in
  let d = Router.route ~tokens:8 [ a; b ] in
  Alcotest.(check int) "cheapest wins" 1 d.Router.d_class;
  (* backlog is amortized over replicas: 1ms + 8ms/8 beats an idle
     2.5ms class, but the same backlog on one replica does not *)
  let loaded replicas =
    view ~cls:0 ~service:0.001 ~backlog:0.008 ~replicas ()
  in
  let idle = view ~cls:1 ~service:0.0025 () in
  let d = Router.route ~tokens:8 [ loaded 8; idle ] in
  Alcotest.(check int) "replicas amortize backlog" 0 d.Router.d_class;
  let d = Router.route ~tokens:8 [ loaded 1; idle ] in
  Alcotest.(check int) "one replica eats it all" 1 d.Router.d_class

let test_router_deadline_awareness () =
  (* fast class misses the budget under backlog; slow idle class fits *)
  let fast = view ~cls:0 ~service:0.001 ~backlog:0.02 () in
  let slow = view ~cls:1 ~service:0.002 () in
  let d = Router.route ~ttft_budget:0.005 ~tokens:8 [ fast; slow ] in
  Alcotest.(check int) "fitting outranks missing" 1 d.Router.d_class;
  (* both fit: the slowest-service class takes it, reserving the fast
     machine for work that actually needs it *)
  let fast = view ~cls:0 ~service:0.001 () in
  let slow = view ~cls:1 ~service:0.002 () in
  let d = Router.route ~ttft_budget:0.1 ~tokens:8 [ fast; slow ] in
  Alcotest.(check int) "slowest fitting wins" 1 d.Router.d_class;
  (* both miss: plain cheapest cost *)
  let fast = view ~cls:0 ~service:0.001 ~backlog:0.01 () in
  let slow = view ~cls:1 ~service:0.002 ~backlog:0.02 () in
  let d = Router.route ~ttft_budget:0.001 ~tokens:8 [ fast; slow ] in
  Alcotest.(check int) "cheapest among missing" 0 d.Router.d_class

let test_router_health_gating () =
  let healthy = view ~cls:0 ~service:0.01 () in
  let degraded = view ~cls:1 ~level:Health.Degraded ~service:0.001 () in
  (* degraded takes cheap shapes only *)
  let d =
    Router.route ~degraded_max_tokens:16 ~tokens:8 [ healthy; degraded ]
  in
  Alcotest.(check int) "degraded takes cheap shape" 1 d.Router.d_class;
  let d =
    Router.route ~degraded_max_tokens:16 ~tokens:64 [ healthy; degraded ]
  in
  Alcotest.(check int) "degraded refuses big shape" 0 d.Router.d_class;
  (* evicted is skipped unless probe-ready, then the placement is the
     half-open probe *)
  let evicted = view ~cls:1 ~level:Health.Evicted ~service:0.001 () in
  let d = Router.route ~tokens:8 [ healthy; evicted ] in
  Alcotest.(check int) "evicted skipped" 0 d.Router.d_class;
  Alcotest.(check bool) "not a probe" false d.Router.d_probe;
  let ready =
    view ~cls:1 ~level:Health.Evicted ~probe_ready:true ~service:0.001 ()
  in
  let d = Router.route ~tokens:8 [ healthy; ready ] in
  Alcotest.(check int) "probe-ready evicted eligible" 1 d.Router.d_class;
  Alcotest.(check bool) "flagged as probe" true d.Router.d_probe;
  (* nothing eligible: forced fallback, availability over perfection *)
  let down0 = view ~cls:0 ~level:Health.Evicted ~service:0.002 () in
  let down1 = view ~cls:1 ~level:Health.Evicted ~service:0.001 () in
  let d = Router.route ~tokens:8 [ down0; down1 ] in
  Alcotest.(check bool) "forced" true d.Router.d_forced;
  Alcotest.(check int) "forced to cheapest" 1 d.Router.d_class

(* --- Tenant profiles and the banded length distribution --- *)

let test_tenant_profiles_override () =
  let profiles = function
    | Tenant.Gold ->
      {
        Tenant.no_profile with
        Tenant.p_ttft = Some 0.015;
        p_max_prompt = Some 16;
        p_max_output = Some 2;
      }
    | Tenant.Silver -> Tenant.no_profile
    | Tenant.Best_effort ->
      {
        Tenant.no_profile with
        Tenant.p_ttft = Some 0.5;
        p_max_prompt = Some 256;
        p_max_output = Some 1;
        p_length_dist = Some (Request.Log_uniform_band { lo = 64 });
      }
  in
  let tagged =
    Tenant.trace ~profiles ~seed:3 ~max_prompt:32 ~max_output:4
      [
        { Tenant.tenant = gold; rate = 100.; count = 12 };
        { Tenant.tenant = silver; rate = 100.; count = 12 };
        { Tenant.tenant = be; rate = 100.; count = 12 };
      ]
      ()
  in
  List.iter
    (fun (tg : Tenant.tagged) ->
      match tg.Tenant.tenant.Tenant.tier with
      | Tenant.Gold ->
        Alcotest.(check (float 1e-9))
          "gold ttft override" 0.015 tg.Tenant.req.Request.slo.Request.ttft;
        Alcotest.(check bool)
          "gold prompt capped" true
          (tg.Tenant.req.Request.prompt_len <= 16)
      | Tenant.Silver ->
        Alcotest.(check bool)
          "silver keeps trace-wide caps" true
          (tg.Tenant.req.Request.prompt_len <= 32)
      | Tenant.Best_effort ->
        let p = tg.Tenant.req.Request.prompt_len in
        Alcotest.(check bool)
          "banded length in [lo, max]" true
          (p >= 64 && p <= 256);
        Alcotest.(check int)
          "single-token output" 1 tg.Tenant.req.Request.output_len)
    tagged

let test_log_uniform_band_validates () =
  Alcotest.check_raises "lo must be >= 1"
    (Invalid_argument "Request: Log_uniform_band lo must be >= 1") (fun () ->
      ignore
        (Request.poisson
           ~length_dist:(Request.Log_uniform_band { lo = 0 })
           ~seed:1 ~rate:10. ~count:1 ~max_prompt:64 ~max_output:2 ()))

(* --- Hetero event loop --- *)

let statuses_cover_trace tagged (o : Hetero.outcome) =
  let ids =
    List.sort_uniq compare
      (List.map (fun (tg : Tenant.tagged) -> tg.Tenant.req.Request.id) tagged)
  in
  let status_ids =
    List.sort compare
      (List.map (fun (r, _) -> r.Request.id) o.Hetero.o_statuses)
  in
  ids = status_ids

let test_hetero_conserves_and_is_deterministic () =
  let tagged = trace () in
  let cfg () = config [ fast_backend (); slow_backend () ] in
  let o1 = Hetero.run (cfg ()) tagged in
  let o2 = Hetero.run (cfg ()) tagged in
  Alcotest.(check bool) "conserved" true o1.Hetero.o_conserved;
  Alcotest.(check bool)
    "statuses cover the trace exactly once" true
    (statuses_cover_trace tagged o1);
  Alcotest.(check string)
    "bit-identical digests across runs" o1.Hetero.o_status_digest
    o2.Hetero.o_status_digest;
  Alcotest.(check int)
    "all completed on a quiet plan"
    (List.length tagged)
    (List.length o1.Hetero.o_completed)

let test_hetero_digest_stable_across_jobs () =
  let tagged = trace () in
  let saved = Mikpoly_util.Domain_pool.default_jobs () in
  let run_at jobs =
    Mikpoly_util.Domain_pool.set_default_jobs jobs;
    Hetero.run
      ~faults:
        (Plan.make
           ~outages:[ Plan.outage ~cls:1 ~start:0.002 ~stop:0.012 ]
           ~seed:7 ())
      (config [ fast_backend (); slow_backend () ])
      tagged
  in
  Fun.protect
    ~finally:(fun () -> Mikpoly_util.Domain_pool.set_default_jobs saved)
    (fun () ->
      let o1 = run_at 1 in
      let o4 = run_at 4 in
      Alcotest.(check string)
        "breaker probes and drains don't depend on --jobs"
        o1.Hetero.o_status_digest o4.Hetero.o_status_digest;
      Alcotest.(check bool) "conserved at jobs=1" true o1.Hetero.o_conserved;
      Alcotest.(check bool) "conserved at jobs=4" true o4.Hetero.o_conserved)

let test_hetero_outage_trips_and_fails_over () =
  let tagged = trace ~count:8 () in
  let plan =
    Plan.make
      ~outages:[ Plan.outage ~cls:1 ~start:0.001 ~stop:0.015 ]
      ~seed:7 ()
  in
  let o =
    Hetero.run ~faults:plan (config [ fast_backend (); slow_backend () ]) tagged
  in
  let sick = List.nth o.Hetero.o_classes 1 in
  Alcotest.(check bool) "breaker tripped" true (sick.Hetero.cs_trips > 0);
  Alcotest.(check bool)
    "trip drained work to the surviving class" true
    (o.Hetero.o_reroutes > 0);
  Alcotest.(check bool) "conserved under failover" true o.Hetero.o_conserved;
  Alcotest.(check int)
    "every request still completes"
    (List.length tagged)
    (List.length o.Hetero.o_completed)

let test_hetero_breaker_crash_interplay () =
  (* A replica crash in the middle of the outage-and-drain window: the
     crash requeues in-flight copies via push_front while the breaker
     is rerouting the same queue — the ledger must still end with
     exactly one terminal status per request, identically on every
     run. *)
  let tagged = trace ~count:8 () in
  let plan =
    Plan.make
      ~outages:[ Plan.outage ~cls:1 ~start:0.001 ~stop:0.015 ]
      ~crashes:[ (0.004, 0); (0.006, 2) ]
      ~restart_delay:0.003 ~seed:7 ()
  in
  let run () =
    Hetero.run ~faults:plan
      (config ~hedge:Hetero.default_hedge
         [ fast_backend ~replicas:2 (); slow_backend ~replicas:2 () ])
      tagged
  in
  let o1 = run () in
  let o2 = run () in
  Alcotest.(check bool) "crashes injected" true (o1.Hetero.o_crashes > 0);
  Alcotest.(check bool)
    "conserved under breaker x crash" true o1.Hetero.o_conserved;
  Alcotest.(check bool)
    "statuses cover the trace exactly once" true
    (statuses_cover_trace tagged o1);
  Alcotest.(check string)
    "digest deterministic under chaos" o1.Hetero.o_status_digest
    o2.Hetero.o_status_digest

let test_hetero_no_failover_keeps_class_queues () =
  let tagged = trace ~count:8 () in
  let plan =
    Plan.make
      ~outages:[ Plan.outage ~cls:1 ~start:0.001 ~stop:0.01 ]
      ~seed:7 ()
  in
  let o =
    Hetero.run ~faults:plan
      (config ~failover:false [ fast_backend (); slow_backend () ])
      tagged
  in
  Alcotest.(check int) "no cross-class drains" 0 o.Hetero.o_reroutes;
  Alcotest.(check int) "no hedges" 0 o.Hetero.o_hedges;
  Alcotest.(check bool) "still conserved" true o.Hetero.o_conserved;
  Alcotest.(check int)
    "outage retries complete after the window"
    (List.length tagged)
    (List.length o.Hetero.o_completed)

let test_hetero_ratelimit_statuses () =
  let tagged = trace ~count:8 () in
  let o =
    Hetero.run
      (config
         ~ratelimit:{ Ratelimit.rl_rate = 10.; rl_burst = 2. }
         [ fast_backend (); slow_backend () ])
      tagged
  in
  Alcotest.(check bool)
    "door sheds under the tiny bucket" true
    (List.length o.Hetero.o_rate_limited > 0);
  Alcotest.(check bool)
    "shed requests stay in the ledger" true o.Hetero.o_conserved;
  Alcotest.(check int)
    "completed + shed covers the trace"
    (List.length tagged)
    (List.length o.Hetero.o_completed + List.length o.Hetero.o_rate_limited)

let test_hetero_scheduler_projection () =
  let tagged = trace () in
  let o = Hetero.run (config [ fast_backend (); slow_backend () ]) tagged in
  let s = Hetero.to_scheduler_outcome o in
  Alcotest.(check int)
    "completed projected"
    (List.length o.Hetero.o_completed)
    (List.length s.Scheduler.completed);
  Alcotest.(check int)
    "cache labels match cache list"
    (List.length s.Scheduler.cache)
    (List.length (Hetero.cache_labels o))

let () =
  Alcotest.run "hetero"
    [
      ( "plan",
        [ Alcotest.test_case "class windows" `Quick test_plan_class_windows ]
      );
      ( "ratelimit",
        [
          Alcotest.test_case "sheds after burst" `Quick
            test_ratelimit_sheds_after_burst;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "would_allow is pure" `Quick
            test_breaker_would_allow_pure;
        ] );
      ( "health",
        [
          Alcotest.test_case "ladder hysteresis" `Quick
            test_health_ladder_hysteresis;
        ] );
      ( "router",
        [
          Alcotest.test_case "cheapest without budget" `Quick
            test_router_cheapest_without_budget;
          Alcotest.test_case "deadline awareness" `Quick
            test_router_deadline_awareness;
          Alcotest.test_case "health gating" `Quick test_router_health_gating;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "profiles override" `Quick
            test_tenant_profiles_override;
          Alcotest.test_case "banded dist validates" `Quick
            test_log_uniform_band_validates;
        ] );
      ( "hetero",
        [
          Alcotest.test_case "conservation and determinism" `Quick
            test_hetero_conserves_and_is_deterministic;
          Alcotest.test_case "digest stable across jobs" `Quick
            test_hetero_digest_stable_across_jobs;
          Alcotest.test_case "outage trips and fails over" `Quick
            test_hetero_outage_trips_and_fails_over;
          Alcotest.test_case "breaker x crash interplay" `Quick
            test_hetero_breaker_crash_interplay;
          Alcotest.test_case "no-failover stays in class" `Quick
            test_hetero_no_failover_keeps_class_queues;
          Alcotest.test_case "ratelimit statuses" `Quick
            test_hetero_ratelimit_statuses;
          Alcotest.test_case "scheduler projection" `Quick
            test_hetero_scheduler_projection;
        ] );
    ]
