(* Command-line driver: run paper-experiment reproductions or compile a
   single GEMM shape and inspect the chosen polymerization. *)

open Cmdliner

(* One process-wide jobs default: every subcommand sets it before doing
   work, and the search/tuning/serving layers inherit it through
   [Domain_pool.resolve_jobs] (Config.search_jobs = 0). *)
let set_jobs jobs =
  if jobs < 0 then (
    Printf.eprintf "bad --jobs: %d (expected 0 = auto or a positive count)\n" jobs;
    exit 2);
  Mikpoly_util.Domain_pool.set_default_jobs
    (if jobs = 0 then Mikpoly_util.Domain_pool.recommended_jobs () else jobs)

(* Process-wide PRNG seed default: subcommands with a --seed flag set it
   before building traces, and every [Prng.default_seed ~fallback] call
   site (serving traces, the drift scenario) picks it up. *)
let set_seed = function
  | None -> ()
  | Some seed when seed < 0 ->
    Printf.eprintf "bad --seed: %d (expected a non-negative integer)\n" seed;
    exit 2
  | Some seed -> Mikpoly_util.Prng.set_default_seed seed

(* Load a learned candidate-ordering model (written by [rank --save])
   for the given platform. Every rejection — truncation, checksum
   mismatch, wrong schema version, wrong platform or fingerprint — is a
   warning and a fall-back to the default (calibrated Eq. 2) ordering,
   never a crash: the ranker only reorders the candidate stream, so
   serving without it is always safe. *)
let load_ranker ~hw = function
  | None -> None
  | Some path -> (
    match Mikpoly_rank.Ranker.load ~path ~hw with
    | Ok r ->
      Printf.printf "loaded ranker model from %s\n" path;
      Some (Mikpoly_rank.Ranker.config_ranker r)
    | Error e ->
      Printf.eprintf
        "ranker %s rejected (%s); search keeps the default candidate order\n"
        path e;
      None)

let run_experiments jobs seed adapt ranker ids quick csv =
  set_jobs jobs;
  set_seed seed;
  Mikpoly_experiments.Exp_serving.with_adaptation := adapt;
  Mikpoly_experiments.Backends.set_ranker
    (load_ranker ~hw:Mikpoly_accel.Hardware.a100 ranker);
  let experiments =
    match ids with
    | [] -> Mikpoly_experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Mikpoly_experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S; available: %s\n" id
              (String.concat ", " Mikpoly_experiments.Registry.ids);
            exit 2)
        ids
  in
  List.iter
    (fun (e : Mikpoly_experiments.Exp.t) ->
      let report = e.run ~quick in
      if csv then
        List.iter
          (fun t -> print_endline (Mikpoly_util.Table.to_csv t))
          report.tables
      else print_endline (Mikpoly_experiments.Exp.render report))
    experiments;
  0

let list_experiments () =
  List.iter
    (fun (e : Mikpoly_experiments.Exp.t) ->
      Printf.printf "%-12s %s\n             paper: %s\n" e.id e.title e.paper_claim)
    Mikpoly_experiments.Registry.all;
  0

let compile_shape jobs m n k npu =
  set_jobs jobs;
  let hw = if npu then Mikpoly_accel.Hardware.ascend910 else Mikpoly_accel.Hardware.a100 in
  let compiler = Mikpoly_core.Compiler.create hw in
  let op = Mikpoly_ir.Operator.gemm ~m ~n ~k () in
  let compiled = Mikpoly_core.Compiler.compile compiler op in
  let sim = Mikpoly_core.Compiler.simulate compiler compiled in
  Printf.printf "%s\n" (Mikpoly_ir.Program.to_string compiled.program);
  Printf.printf
    "pattern: %s   candidates: %d (pruned %d bound, %d analytic)   search: %s\n"
    (Mikpoly_core.Pattern.to_string compiled.pattern)
    compiled.candidates compiled.pruned compiled.pruned_analytic
    (Mikpoly_util.Table.fmt_time_us compiled.search_seconds);
  Printf.printf "device time: %s   %.1f TFLOPS   sm_eff %.1f%%   waves %.0f\n"
    (Mikpoly_util.Table.fmt_time_us sim.seconds)
    (Mikpoly_accel.Simulator.tflops sim
       ~useful_flops:(Mikpoly_ir.Operator.flops op))
    (100. *. sim.sm_efficiency) sim.waves;
  0

let offline jobs npu save load_path =
  set_jobs jobs;
  let hw = if npu then Mikpoly_accel.Hardware.ascend910 else Mikpoly_accel.Hardware.a100 in
  let config = Mikpoly_core.Config.default hw in
  let set =
    match load_path with
    | Some path -> (
      match Mikpoly_core.Kernel_store.load ~path hw config with
      | Ok set ->
        Printf.printf "loaded kernel set from %s\n" path;
        set
      | Error e ->
        Printf.eprintf "cannot load %s: %s\n" path e;
        exit 1)
    | None -> Mikpoly_core.Kernel_set.create hw config
  in
  (match save with
  | Some path ->
    Mikpoly_core.Kernel_store.save ~path config set;
    Printf.printf "saved kernel set to %s\n" path
  | None -> ());
  let table =
    Mikpoly_util.Table.create ~title:("offline kernel set for " ^ hw.name)
      ~header:[ "rank"; "kernel"; "warps"; "blocks/PE"; "wave cap"; "score" ]
  in
  Array.iter
    (fun (e : Mikpoly_core.Kernel_set.entry) ->
      Mikpoly_util.Table.add_row table
        [
          string_of_int e.rank;
          Mikpoly_accel.Kernel_desc.name e.desc;
          string_of_int (Mikpoly_accel.Kernel_model.warps hw e.desc);
          string_of_int (Mikpoly_accel.Kernel_model.blocks_per_pe hw e.desc);
          string_of_int e.wave_capacity;
          Printf.sprintf "%.3f" e.rank_score;
        ])
    set.entries;
  print_endline (Mikpoly_util.Table.render table);
  0

let show_patterns m n =
  (* Render each pattern's region decomposition as a coarse grid. *)
  let width = 32 and height = 12 in
  List.iter
    (fun p ->
      let cuts =
        match Mikpoly_core.Pattern.arity p with
        | 0 -> []
        | 1 -> (
          match p with
          | Mikpoly_core.Pattern.II -> [ (m * 3 / 4) - (m * 3 / 4 mod 1) ]
          | _ -> [ n * 3 / 4 ])
        | _ -> (
          match p with
          | Mikpoly_core.Pattern.VII -> [ m / 2; m * 3 / 4 ]
          | Mikpoly_core.Pattern.VIII -> [ n / 2; n * 3 / 4 ]
          | _ -> [ m * 3 / 4; n * 3 / 4 ])
      in
      match Mikpoly_core.Pattern.decompose p ~m ~n ~cuts with
      | None -> Printf.printf "%s: (degenerate for %dx%d)\n" (Mikpoly_core.Pattern.to_string p) m n
      | Some rects ->
        Printf.printf "%s:\n" (Mikpoly_core.Pattern.to_string p);
        for row = 0 to height - 1 do
          print_string "  ";
          for col = 0 to width - 1 do
            let i = row * m / height and j = col * n / width in
            let region =
              List.find_map
                (fun idx ->
                  let r = List.nth rects idx in
                  if i >= r.Mikpoly_core.Pattern.row_off
                     && i < r.row_off + r.rows
                     && j >= r.col_off
                     && j < r.col_off + r.cols
                  then Some idx
                  else None)
                (List.init (List.length rects) Fun.id)
            in
            print_char
              (match region with
              | Some idx -> Char.chr (Char.code 'A' + idx)
              | None -> '?')
          done;
          print_newline ()
        done;
        print_newline ())
    Mikpoly_core.Pattern.all;
  0

let verify count npu =
  let hw = if npu then Mikpoly_accel.Hardware.ascend910 else Mikpoly_accel.Hardware.a100 in
  let compiler = Mikpoly_core.Compiler.create hw in
  match Mikpoly_core.Selfcheck.check_random_shapes compiler ~count with
  | Ok n ->
    Printf.printf "OK: %d random shapes compiled, executed and matched the reference GEMM\n" n;
    0
  | Error f ->
    let m, n, k = f.shape in
    Printf.eprintf "FAILED at (%d,%d,%d): max |diff| = %g\n  %s\n" m n k
      f.max_abs_diff f.program;
    1

let serve jobs seed quick csv npu adapt_on ranker replicas requests rate cache
    bucket batcher max_batch window =
  set_jobs jobs;
  set_seed seed;
  let open Mikpoly_serve in
  let hw =
    if npu then Mikpoly_accel.Hardware.ascend910 else Mikpoly_accel.Hardware.a100
  in
  let bucketing =
    match Bucketing.of_string bucket with
    | Ok p -> p
    | Error e ->
      Printf.eprintf "bad --bucket: %s\n" e;
      exit 2
  in
  let batcher =
    match batcher with
    | "greedy" -> Batcher.Greedy { max_batch }
    | "timeout" -> Batcher.Timeout { max_batch; window }
    | "slo" | "slo-aware" -> Batcher.Slo_aware { max_batch }
    | s ->
      Printf.eprintf "bad --batcher %S (greedy|timeout|slo)\n" s;
      exit 2
  in
  if replicas < 1 || requests < 1 || cache < 0 || max_batch < 1
     || not (rate > 0.) || window < 0.
  then begin
    Printf.eprintf
      "serve: need --replicas >= 1, --requests >= 1, --cache >= 0, \
       --max-batch >= 1, --rate > 0 and --window >= 0\n";
    exit 2
  end;
  let count = if quick then min requests 16 else requests in
  let trace =
    Request.poisson
      ~seed:(Mikpoly_util.Prng.default_seed ~fallback:0x5E2 ())
      ~rate ~count
      ~max_prompt:(if quick then 64 else 256)
      ~max_output:(if quick then 8 else 48)
      ()
  in
  let config =
    {
      (Mikpoly_core.Config.default hw) with
      Mikpoly_core.Config.ranker = load_ranker ~hw ranker;
    }
  in
  let compiler = Mikpoly_core.Compiler.create ~config hw in
  let adapter =
    if adapt_on then Some (Mikpoly_adapt.Adapter.create compiler) else None
  in
  let adapt =
    Option.map (fun a () -> Mikpoly_adapt.Adapter.drain_stall_seconds a) adapter
  in
  let engine = Scheduler.mikpoly_engine compiler in
  let config = { Scheduler.replicas; batcher; bucketing; cache_capacity = cache } in
  let baseline =
    {
      config with
      cache_capacity = 0;
      bucketing = Bucketing.Exact;
      batcher = Batcher.Greedy { max_batch };
    }
  in
  let table =
    Mikpoly_util.Table.create
      ~title:
        (Printf.sprintf "serve: %d req @ %g req/s on %s" count rate hw.name)
      ~header:Mikpoly_serve.Metrics.header
  in
  let measure label cfg =
    let o = Scheduler.run ?adapt cfg engine trace in
    let m = Metrics.of_outcome o in
    Mikpoly_util.Table.add_row table (Metrics.to_row ~label m);
    (m, o)
  in
  let label =
    Printf.sprintf "cache-%d %s %s" cache (Bucketing.name bucketing)
      (Batcher.name batcher)
  in
  let m, outcome = measure label config in
  let b, _ = measure "no-cache exact greedy" baseline in
  if csv then print_endline (Mikpoly_util.Table.to_csv table)
  else begin
    print_endline (Mikpoly_util.Table.render table);
    Printf.printf
      "p95 %s vs %s no-cache; compile stall %s vs %s; SLO attainment %.0f%% vs %.0f%%\n"
      (Mikpoly_util.Table.fmt_time_us m.Metrics.latency_p95)
      (Mikpoly_util.Table.fmt_time_us b.Metrics.latency_p95)
      (Mikpoly_util.Table.fmt_time_us m.Metrics.compile_stall_seconds)
      (Mikpoly_util.Table.fmt_time_us b.Metrics.compile_stall_seconds)
      (100. *. m.Metrics.slo_attainment)
      (100. *. b.Metrics.slo_attainment);
    (match adapter with
    | Some a ->
      let s = Mikpoly_adapt.Adapter.stats a in
      Printf.printf
        "adaptation: %d observations, %d drift event(s), adapt stall %s\n"
        s.Mikpoly_adapt.Adapter.observations
        s.Mikpoly_adapt.Adapter.drift_events
        (Mikpoly_util.Table.fmt_time_us m.Metrics.adapt_stall_seconds)
    | None -> ());
    print_endline
      (Mikpoly_util.Table.render (Metrics.cache_table ~replicas outcome));
    print_string (Mikpoly_telemetry.Report.telemetry_section ())
  end;
  0

(* Drive the drift scenario end to end: serve an observation trace through
   an adapter-instrumented compiler, degrade the execution device halfway,
   and report detection latency, cache invalidation, recompilation and
   ranking quality before/after calibration. *)
let adapt jobs seed quick csv npu severity trace_len save_path =
  set_jobs jobs;
  set_seed seed;
  let open Mikpoly_adapt in
  if severity < 0. || severity >= 1. then begin
    Printf.eprintf "bad --severity: %g (expected 0 <= s < 1)\n" severity;
    exit 2
  end;
  if trace_len < 2 then begin
    Printf.eprintf "bad --trace: %d (expected >= 2)\n" trace_len;
    exit 2
  end;
  let hw =
    if npu then Mikpoly_accel.Hardware.ascend910 else Mikpoly_accel.Hardware.a100
  in
  let compiler = Mikpoly_core.Compiler.create hw in
  let r =
    Scenario.run
      ~seed:(Mikpoly_util.Prng.default_seed ~fallback:0xADA ())
      ~severity
      ~trace:(if quick then min trace_len 24 else trace_len)
      compiler
  in
  let stats = Adapter.stats r.adapter in
  let table =
    Mikpoly_util.Table.create
      ~title:
        (Printf.sprintf "adapt: %d-step trace on %s, drift severity %g"
           r.trace_length hw.name severity)
      ~header:[ "metric"; "stale"; "calibrated" ]
  in
  Mikpoly_util.Table.add_row table
    [
      "Kendall tau (held-out)";
      Printf.sprintf "%.4f" r.before.tau;
      Printf.sprintf "%.4f" r.after.tau;
    ];
  Mikpoly_util.Table.add_row table
    [
      "top-1 regret";
      Printf.sprintf "%.2f%%" (100. *. r.before.top1_regret);
      Printf.sprintf "%.2f%%" (100. *. r.after.top1_regret);
    ];
  if csv then print_endline (Mikpoly_util.Table.to_csv table)
  else begin
    print_endline (Mikpoly_util.Table.render table);
    Printf.printf
      "drift: %d event(s), detected %d observation(s) after injection; %d \
       program(s) invalidated, %d hot shape(s) recompiled (%s stall), %d \
       kernel(s) calibrated\n"
      stats.Adapter.drift_events r.reaction_observations
      stats.Adapter.invalidated stats.Adapter.recompiles
      (Mikpoly_util.Table.fmt_time_us r.stall_seconds)
      stats.Adapter.calibrated_kernels
  end;
  (match save_path with
  | Some path ->
    Adapter.save_profile r.adapter ~path;
    Printf.printf "saved calibration profile to %s\n" path
  | None -> ());
  if stats.Adapter.drift_events < 1 then begin
    Printf.eprintf "adaptation failed: the drift detector never fired\n";
    1
  end
  else 0

(* Seeded chaos run: the canonical resilience A/B (one fault plan, two
   serving arms) plus the corrupted-kernel-store degradation-ladder
   demo, with the acceptance gates asserted hard. The JSON report
   contains only simulated quantities, so two runs with the same seed —
   at any --jobs count — must produce byte-identical files (checked by
   the CI chaos-smoke stage with cmp). *)
let chaos jobs seed quick csv out =
  set_jobs jobs;
  set_seed seed;
  let open Mikpoly_serve in
  let hw = Mikpoly_accel.Hardware.a100 in
  let compiler = Mikpoly_core.Compiler.create hw in
  let ab, n_req =
    Mikpoly_experiments.Exp_resilience.chaos_ab ~quick compiler
  in
  let on = ab.Resilience.with_resilience in
  let off = ab.Resilience.without_resilience in
  let table =
    Mikpoly_util.Table.create
      ~title:
        (Printf.sprintf "chaos: %d requests under fault plan seed %d" n_req
           ab.Resilience.faults.Mikpoly_fault.Plan.seed)
      ~header:(Metrics.header @ [ "injected"; "silent"; "digest" ])
  in
  let arm_row (a : Resilience.arm) =
    Metrics.to_row ~label:a.Resilience.arm_name a.Resilience.metrics
    @ [
        string_of_int a.Resilience.injected_faults;
        string_of_int a.Resilience.silent_losses;
        a.Resilience.status_digest;
      ]
  in
  Mikpoly_util.Table.add_row table (arm_row off);
  Mikpoly_util.Table.add_row table (arm_row on);
  let ladder, ladder_rows, ladder_req =
    Mikpoly_experiments.Exp_resilience.ladder_table ~quick
  in
  if csv then begin
    print_endline (Mikpoly_util.Table.to_csv table);
    print_endline (Mikpoly_util.Table.to_csv ladder)
  end
  else begin
    print_endline (Mikpoly_util.Table.render table);
    print_endline (Mikpoly_util.Table.render ladder)
  end;
  let ladder_ok =
    List.for_all
      (fun (name, served, safe_generic) ->
        served = ladder_req && (name = "intact" || safe_generic > 0))
      ladder_rows
  in
  let json =
    let open Mikpoly_telemetry in
    let arm name (a : Resilience.arm) =
      let m = a.Resilience.metrics in
      ( name,
        Json.Obj
          [
            ( "slo_attainment",
              Json.Number m.Mikpoly_serve.Metrics.slo_attainment );
            ( "completed",
              Json.Number (float_of_int m.Mikpoly_serve.Metrics.completed) );
            ( "failed",
              Json.Number (float_of_int m.Mikpoly_serve.Metrics.failed) );
            ( "timed_out",
              Json.Number (float_of_int m.Mikpoly_serve.Metrics.timed_out) );
            ( "retries",
              Json.Number (float_of_int m.Mikpoly_serve.Metrics.retries) );
            ( "injected_faults",
              Json.Number (float_of_int a.Resilience.injected_faults) );
            ("crashes", Json.Number (float_of_int a.Resilience.crashes));
            ( "silent_losses",
              Json.Number (float_of_int a.Resilience.silent_losses) );
            ("status_digest", Json.String a.Resilience.status_digest);
          ] )
    in
    Json.Obj
      [
        ("requests", Json.Number (float_of_int n_req));
        ( "seed",
          Json.Number
            (float_of_int ab.Resilience.faults.Mikpoly_fault.Plan.seed) );
        arm "with_resilience" on;
        arm "without_resilience" off;
        ( "ladder",
          Json.List
            (List.map
               (fun (name, served, safe_generic) ->
                 Json.Obj
                   [
                     ("store", Json.String name);
                     ("served", Json.Number (float_of_int served));
                     ("requests", Json.Number (float_of_int ladder_req));
                     (* The raw compile count varies with --jobs (the
                        concurrent precompile fans out over more shapes
                        than the lazy path touches), so the report keeps
                        only the jobs-invariant fact. *)
                     ("reached_safe_generic", Json.Bool (safe_generic > 0));
                   ])
               ladder_rows) );
        ("ladder_ok", Json.Bool ladder_ok);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Mikpoly_telemetry.Json.to_string json));
  Printf.printf "wrote %s\n" out;
  let fail msg =
    Printf.eprintf "chaos failed: %s\n" msg;
    1
  in
  if on.Resilience.injected_faults = 0 || off.Resilience.injected_faults = 0
  then fail "the fault plan injected nothing"
  else if not (Resilience.no_silent_losses ab) then
    fail "a request was lost silently"
  else if not (Resilience.resilience_wins ab) then
    Printf.ksprintf fail
      "resilience did not beat the unprotected arm (SLO %.4f vs %.4f)"
      on.Resilience.metrics.Metrics.slo_attainment
      off.Resilience.metrics.Metrics.slo_attainment
  else if not ladder_ok then
    fail
      "the degradation ladder lost requests (or never reached the safe \
       generic rung) on a corrupted kernel store"
  else 0

(* Whole-model graph serving: rewrite passes, memory planning and
   pipelined compile/execute per model, plus the whole-graph vs
   per-operator serving A/B, with the acceptance gates asserted hard.
   The JSON report contains only simulated quantities, so two runs — at
   any --jobs count — must produce byte-identical files (checked by the
   CI graph-smoke stage with cmp). *)
let graph jobs quick csv out =
  set_jobs jobs;
  let module E = Mikpoly_experiments.Exp_graph in
  let compiler = Mikpoly_experiments.Backends.gpu () in
  let runs = E.model_runs ~quick compiler in
  let serving = E.serving_ab ~quick compiler in
  let report = E.report runs serving in
  if csv then
    List.iter
      (fun t -> print_endline (Mikpoly_util.Table.to_csv t))
      report.Mikpoly_experiments.Exp.tables
  else print_string (Mikpoly_experiments.Exp.render report);
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Mikpoly_telemetry.Json.to_string (E.json ~quick runs serving)));
  Printf.printf "wrote %s\n" out;
  match E.failed_gates (E.gates runs serving) with
  | [] -> 0
  | fs ->
    List.iter
      (fun (g : E.gate) ->
        Printf.eprintf "graph gate failed: %s: %s\n" g.E.gate_name
          g.E.gate_detail)
      fs;
    1

(* Multi-tenant fleet serving: the WFQ / coalescing / warm-store /
   autoscaler ladder against the tenant-blind scheduler on a heavy-tail
   multi-tenant trace, with the acceptance gates asserted hard. The JSON
   report contains only simulated quantities, so two runs — at any
   --jobs count — must produce byte-identical files (checked by the CI
   fleet-smoke stage with cmp). With --store, the compiler warm-loads
   its kernel set from a Kernel_store artifact and precompiles every
   admissible bucket program before serving starts. *)
let fleet jobs quick csv out store ranker =
  set_jobs jobs;
  let module E = Mikpoly_experiments.Exp_fleet in
  let hw = Mikpoly_accel.Hardware.a100 in
  let config =
    {
      (Mikpoly_core.Config.default hw) with
      Mikpoly_core.Config.ranker = load_ranker ~hw ranker;
    }
  in
  let compiler =
    match store with
    | None -> Mikpoly_core.Compiler.create ~config hw
    | Some path ->
      (* The ranker is cache-key-excluded, so the stored kernel set is
         shared with ranker-less runs. *)
      ignore (Mikpoly_core.Kernel_store.load_or_create ~path hw config);
      let compiler, degraded =
        Mikpoly_core.Compiler.create_resilient ~config ~store_path:path hw
      in
      (match degraded with
      | Some reason ->
        Printf.eprintf "fleet: store %s unusable (%s); safe mode\n" path
          reason
      | None -> Printf.printf "fleet: kernel set loaded from %s\n" path);
      let open Mikpoly_serve in
      let engine = Scheduler.mikpoly_engine compiler in
      let max_prompt = if quick then 64 else 256 in
      let rec buckets b = if b > max_prompt then [] else b :: buckets (b * 2) in
      let shapes =
        List.sort_uniq compare
          (List.concat_map
             (fun b -> List.map fst (engine.Scheduler.step_shapes ~tokens:b))
             (buckets 1))
      in
      let fresh = Mikpoly_core.Compiler.warm compiler shapes in
      Printf.printf "fleet: warmed %d bucket programs (%d compiled fresh)\n"
        (List.length shapes) fresh;
      compiler
  in
  let r = E.results ~quick compiler in
  let report = E.report r in
  if csv then
    List.iter
      (fun t -> print_endline (Mikpoly_util.Table.to_csv t))
      report.Mikpoly_experiments.Exp.tables
  else print_string (Mikpoly_experiments.Exp.render report);
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Mikpoly_telemetry.Json.to_string (E.json r)));
  Printf.printf "wrote %s\n" out;
  match E.failed_gates (E.gates r) with
  | [] -> 0
  | fs ->
    List.iter
      (fun (g : E.gate) ->
        Printf.eprintf "fleet gate failed: %s: %s\n" g.E.gate_name
          g.E.gate_detail)
      fs;
    1

(* Heterogeneous mixed GPU+NPU fleet serving: device-class-keyed
   stores, cost-model routing, the per-class health plane (breaker,
   brown-out ladder, hedged dispatch) against the equal-PE
   single-backend fleets and the chaos pair, with the acceptance gates
   asserted hard. The JSON report contains only simulated quantities,
   so two runs — at any --jobs count — must produce byte-identical
   files (checked by the CI hetero-smoke stage with cmp). *)
let hetero jobs quick csv out =
  set_jobs jobs;
  let module E = Mikpoly_experiments.Exp_hetero in
  let r = E.results ~quick in
  let report = E.report r in
  if csv then
    List.iter
      (fun t -> print_endline (Mikpoly_util.Table.to_csv t))
      report.Mikpoly_experiments.Exp.tables
  else print_string (Mikpoly_experiments.Exp.render report);
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Mikpoly_telemetry.Json.to_string (E.json r)));
  Printf.printf "wrote %s
" out;
  match E.failed_gates (E.gates r) with
  | [] -> 0
  | fs ->
    List.iter
      (fun (g : E.gate) ->
        Printf.eprintf "hetero gate failed: %s: %s
" g.E.gate_name
          g.E.gate_detail)
      fs;
    1

(* Train and evaluate the learned candidate-ordering ranker (lib/rank):
   harvest simulator observations on both platforms, fit the
   gradient-boosted model and the calibrated-Eq.-2 baseline from the
   same examples, compare Kendall tau / top-1 regret on held-out shapes,
   check GPU->NPU transfer and the deadline A/B, with the acceptance
   gates asserted hard. The JSON report contains only simulated
   quantities, so two runs — at any --jobs count — must produce
   byte-identical files (checked by the CI rank-smoke stage with cmp). *)
let rank jobs seed quick csv out save =
  set_jobs jobs;
  set_seed seed;
  let module E = Mikpoly_experiments.Exp_rank in
  let r = E.results ~quick in
  let report = E.report r in
  if csv then
    List.iter
      (fun t -> print_endline (Mikpoly_util.Table.to_csv t))
      report.Mikpoly_experiments.Exp.tables
  else print_string (Mikpoly_experiments.Exp.render report);
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Mikpoly_telemetry.Json.to_string (E.json r)));
  Printf.printf "wrote %s\n" out;
  (match save with
  | Some path ->
    Mikpoly_rank.Ranker.save ~path r.E.r_gpu_ranker;
    Printf.printf "saved ranker model to %s\n" path
  | None -> ());
  match E.failed_gates (E.gates r) with
  | [] -> 0
  | fs ->
    List.iter
      (fun (g : E.gate) ->
        Printf.eprintf "rank gate failed: %s: %s\n" g.E.gate_name
          g.E.gate_detail)
      fs;
    1

(* Run a target under the span tracer and export the observability
   artifacts: a Chrome/Perfetto trace, the flat profile and the metrics
   registry. "serve" drives the full stack (offline tuning at compiler
   creation, online polymerization and device simulation inside the
   engine, the serving scheduler on top); any experiment id profiles
   that reproduction instead. *)
let profile jobs target quick npu trace_out top csv_metrics =
  set_jobs jobs;
  let open Mikpoly_telemetry in
  Tracer.reset ();
  Metrics.reset ();
  Tracer.enable ();
  let status =
    match target with
    | "serve" ->
      let hw =
        if npu then Mikpoly_accel.Hardware.ascend910
        else Mikpoly_accel.Hardware.a100
      in
      let compiler = Mikpoly_core.Compiler.create hw in
      let engine = Mikpoly_serve.Scheduler.mikpoly_engine compiler in
      let count = if quick then 16 else 96 in
      let trace =
        Mikpoly_serve.Request.poisson ~seed:0x5E2 ~rate:30. ~count
          ~max_prompt:(if quick then 64 else 256)
          ~max_output:(if quick then 8 else 48)
          ()
      in
      let config =
        {
          Mikpoly_serve.Scheduler.replicas = 2;
          batcher = Mikpoly_serve.Batcher.Greedy { max_batch = 32 };
          bucketing = Mikpoly_serve.Bucketing.Aligned 8;
          cache_capacity = 64;
        }
      in
      let outcome =
        Tracer.with_span "profile.serve" (fun () ->
            Mikpoly_serve.Scheduler.run config engine trace)
      in
      Printf.printf "profiled serve on %s: %d completed, %d steps, makespan %.3fs\n"
        hw.name
        (List.length outcome.Mikpoly_serve.Scheduler.completed)
        outcome.steps outcome.makespan;
      0
    | id -> (
      match Mikpoly_experiments.Registry.find id with
      | Some e ->
        let report = Mikpoly_experiments.Exp.run_traced e ~quick in
        print_endline (Mikpoly_experiments.Exp.render report);
        0
      | None ->
        Printf.eprintf "unknown profile target %S (serve or one of: %s)\n" id
          (String.concat ", " Mikpoly_experiments.Registry.ids);
        2)
  in
  Tracer.disable ();
  if status <> 0 then status
  else begin
    (match trace_out with
    | Some path ->
      let n = Export_chrome.write ~path () in
      Printf.printf
        "wrote %d spans to %s (open in chrome://tracing or ui.perfetto.dev)\n" n
        path
    | None -> ());
    print_string (Report.telemetry_section ~top ());
    if csv_metrics then print_string (Export_csv.of_registry ());
    0
  end

let validate_trace path =
  let open Mikpoly_telemetry in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e ->
    Printf.eprintf "cannot read %s: %s\n" path e;
    1
  | contents -> (
    match Json.parse contents with
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      1
    | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List (_ :: _ as events)) ->
        let spans =
          List.filter
            (fun ev -> Json.member "ph" ev = Some (Json.String "X"))
            events
        in
        if spans = [] then begin
          Printf.eprintf "%s: no complete ('X') span events\n" path;
          1
        end
        else begin
          Printf.printf "%s: valid Chrome trace, %d events (%d spans)\n" path
            (List.length events) (List.length spans);
          0
        end
      | _ ->
        Printf.eprintf "%s: missing or empty traceEvents\n" path;
        1))

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Subsample heavy workloads.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel polymerization search, offline \
           tuning and serving precompile (0 = auto-detect, capped at 8; 1 \
           = sequential). The chosen programs are identical for every \
           value.")

let csv_flag = Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed the deterministic PRNG streams (request traces, drift \
           scenario shapes). Runs with the same seed are bit-identical; \
           negative values are rejected.")

let adapt_flag =
  Arg.(
    value & flag
    & info [ "adapt" ]
        ~doc:
          "Attach the online adaptation loop (lib/adapt): observe \
           prediction residuals, detect drift and charge recompilations \
           on the serving event clock.")

let ranker_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ranker" ] ~docv:"FILE"
        ~doc:
          "Load a learned candidate-ordering model (written by $(b,rank \
           --save)) and let it order the polymerization search's candidate \
           stream best-first. Ordering never changes an un-truncated \
           search's program; a rejected artifact (wrong platform, \
           fingerprint, schema or checksum) falls back to the default \
           order with a warning.")

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (default: all).")

let run_cmd =
  let doc = "Run paper-experiment reproductions" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_experiments $ jobs_arg $ seed_arg $ adapt_flag $ ranker_arg
      $ ids_arg $ quick_flag $ csv_flag)

let list_cmd =
  let doc = "List available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let compile_cmd =
  let doc = "Polymerize a single GEMM shape and report the chosen program" in
  let m = Arg.(required & opt (some int) None & info [ "m" ] ~docv:"M") in
  let n = Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N") in
  let k = Arg.(required & opt (some int) None & info [ "k" ] ~docv:"K") in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const compile_shape $ jobs_arg $ m $ n $ k $ npu)

let offline_cmd =
  let doc = "Run (or load) the offline stage and print the tuned kernel set" in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Persist the kernel set to FILE.")
  in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
           ~doc:"Load the kernel set from FILE instead of tuning.")
  in
  Cmd.v (Cmd.info "offline" ~doc)
    Term.(const offline $ jobs_arg $ npu $ save $ load)

let patterns_cmd =
  let doc = "Visualize the nine polymerization patterns (Figure 5)" in
  let m = Arg.(value & opt int 1024 & info [ "m" ] ~docv:"M") in
  let n = Arg.(value & opt int 1024 & info [ "n" ] ~docv:"N") in
  Cmd.v (Cmd.info "patterns" ~doc) Term.(const show_patterns $ m $ n)

let serve_cmd =
  let doc = "Simulate an SLO-aware serving deployment over a request stream" in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  let replicas =
    Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N" ~doc:"Engine replicas.")
  in
  let requests =
    Arg.(value & opt int 96 & info [ "requests" ] ~docv:"N" ~doc:"Trace length.")
  in
  let rate =
    Arg.(value & opt float 30. & info [ "rate" ] ~docv:"R"
           ~doc:"Mean arrival rate, requests/second.")
  in
  let cache =
    Arg.(value & opt int 64 & info [ "cache" ] ~docv:"N"
           ~doc:"Per-replica compiled-program cache capacity (0 disables).")
  in
  let bucket =
    Arg.(value & opt string "aligned-8" & info [ "bucket" ] ~docv:"POLICY"
           ~doc:"Token bucketing: exact, pow2, aligned-<q> or fixed-<c>.")
  in
  let batcher =
    Arg.(value & opt string "greedy" & info [ "batcher" ] ~docv:"POLICY"
           ~doc:"Admission: greedy, timeout or slo.")
  in
  let max_batch =
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Maximum in-flight batch per replica.")
  in
  let window =
    Arg.(value & opt float 8e-3 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Batching window for --batcher timeout.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ jobs_arg $ seed_arg $ quick_flag $ csv_flag $ npu
      $ adapt_flag $ ranker_arg $ replicas $ requests $ rate $ cache $ bucket
      $ batcher $ max_batch $ window)

let adapt_cmd =
  let doc =
    "Run the online-calibration drift scenario: observe, detect, \
     recalibrate, recompile"
  in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  let severity =
    Arg.(
      value & opt float 0.35
      & info [ "severity" ] ~docv:"S"
          ~doc:"Drift severity injected at the trace midpoint (0 <= S < 1).")
  in
  let trace_len =
    Arg.(
      value & opt int 48
      & info [ "trace" ] ~docv:"N" ~doc:"Observation-trace length.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Persist the fitted calibration profile to FILE.")
  in
  Cmd.v (Cmd.info "adapt" ~doc)
    Term.(
      const adapt $ jobs_arg $ seed_arg $ quick_flag $ csv_flag $ npu
      $ severity $ trace_len $ save)

let chaos_cmd =
  let doc =
    "Run the seeded chaos A/B (one fault plan, serving with and without \
     resilience) plus the corrupted-store degradation-ladder check, and \
     write a machine-readable report"
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_resilience.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Report file. Contains only simulated quantities, so runs with \
             the same seed are byte-identical at any $(b,--jobs) count.")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const chaos $ jobs_arg $ seed_arg $ quick_flag $ csv_flag $ out)

let graph_cmd =
  let doc =
    "Run the whole-model graph-serving pipeline (typed operator DAGs, \
     rewrite passes, memory planning, pipelined compile/execute, and the \
     whole-graph vs per-operator serving A/B) and write a machine-readable \
     report"
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_graph.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Report file. Contains only simulated quantities, so runs are \
             byte-identical at any $(b,--jobs) count.")
  in
  Cmd.v (Cmd.info "graph" ~doc)
    Term.(const graph $ jobs_arg $ quick_flag $ csv_flag $ out)

let fleet_cmd =
  let doc =
    "Run the multi-tenant continuous-batching fleet (weighted fair \
     queueing, shape-aware coalescing, learned warm store, \
     telemetry-driven autoscaling) against the tenant-blind scheduler \
     and write a machine-readable report"
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_fleet.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Report file. Contains only simulated quantities, so runs are \
             byte-identical at any $(b,--jobs) count.")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Warm-load the compiler's kernel set from this Kernel_store \
             artifact (created on first use) and precompile every \
             admissible bucket program before serving.")
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const fleet $ jobs_arg $ quick_flag $ csv_flag $ out $ store
      $ ranker_arg)

let hetero_cmd =
  let doc =
    "Run the heterogeneous mixed GPU+NPU fleet (device-class kernel \
     stores, cost-model routing, per-class circuit breaker, brown-out \
     ladder, hedged dispatch) against equal-PE single-backend fleets \
     and the chaos failover A/B, and write a machine-readable report"
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_hetero.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Report file. Contains only simulated quantities, so runs are \
             byte-identical at any $(b,--jobs) count.")
  in
  Cmd.v (Cmd.info "hetero" ~doc)
    Term.(const hetero $ jobs_arg $ quick_flag $ csv_flag $ out)

let rank_cmd =
  let doc =
    "Train the learned candidate-ordering ranker from simulator \
     observations, compare it against calibrated Equation 2 on held-out \
     shapes (both fingerprints), check GPU->NPU transfer and the \
     search-deadline A/B, and write a machine-readable report"
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_rank.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Report file. Contains only simulated quantities, so runs are \
             byte-identical at any $(b,--jobs) count.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Persist the trained GPU ranker model (versioned, checksummed) \
             to FILE for $(b,--ranker).")
  in
  Cmd.v (Cmd.info "rank" ~doc)
    Term.(const rank $ jobs_arg $ seed_arg $ quick_flag $ csv_flag $ out $ save)

let verify_cmd =
  let doc = "Numerically verify compiled programs against the reference GEMM" in
  let count = Arg.(value & opt int 25 & info [ "count" ] ~docv:"N") in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const verify $ count $ npu)

let profile_cmd =
  let doc =
    "Profile a serving run or an experiment under the span tracer and \
     export a Chrome/Perfetto trace plus a flat profile"
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"What to profile: $(b,serve) or an experiment id (see $(b,list)).")
  in
  let npu = Arg.(value & flag & info [ "npu" ] ~doc:"Target the NPU model.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON file (chrome://tracing, \
                ui.perfetto.dev).")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Profile rows to print.")
  in
  let csv_metrics =
    Arg.(
      value & flag
      & info [ "csv-metrics" ] ~doc:"Also dump the metrics registry as CSV.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const profile $ jobs_arg $ target $ quick_flag $ npu $ trace_out $ top
      $ csv_metrics)

let validate_trace_cmd =
  let doc = "Check that FILE is a well-formed, non-empty Chrome trace" in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by $(b,profile).")
  in
  Cmd.v (Cmd.info "validate-trace" ~doc) Term.(const validate_trace $ path)

let main =
  let doc = "MikPoly dynamic-shape tensor compiler (simulated reproduction)" in
  Cmd.group (Cmd.info "mikpoly_cli" ~doc)
    [ run_cmd; list_cmd; compile_cmd; offline_cmd; patterns_cmd; serve_cmd;
      adapt_cmd; chaos_cmd; graph_cmd; fleet_cmd; hetero_cmd; rank_cmd;
      verify_cmd;
      profile_cmd; validate_trace_cmd ]

let () = exit (Cmd.eval' main)
